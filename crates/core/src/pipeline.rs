//! The experiment engine: scenario-driven, staged, deterministic.
//!
//! Three layers:
//!
//! * [`ExperimentBuilder`] — the entry point: pick a named scenario (or
//!   a raw config), a seed, a profile, a thread count and an observer,
//!   and get an [`Engine`].
//! * [`Engine`] — runs the typed stages ([`crate::stage`]) with artifact
//!   caching: `crowd()` runs the campaign once and every later call
//!   (including `analyze()`) reuses the artifact. All parallel sections
//!   go through the deterministic [`Executor`], so the report is
//!   byte-identical at any thread count.
//! * [`Experiment`] — the original monolithic API, kept as a thin
//!   compatibility shim over the stage functions.

use crate::config::ExperimentConfig;
use crate::executor::Executor;
use crate::frames::{FrameCache, StoreCache};
use crate::observer::{BufferedObserver, NullObserver, RunObserver, StageKind};
use crate::report::Report;
use crate::scenario::{Profile, RunPlan, ScenarioParams, ScenarioRegistry};
use crate::spec::ScenarioSpec;
use crate::stage::{self, AnalysisArtifact, CrawlArtifact, CrowdArtifact, PersonaArtifact};
use crate::store::{self, ArtifactStore, ChunkedPayload, Provenance, StoreError, StoreFormat};
use crate::world::World;
use pd_sheriff::cleaning::CleaningReport;
use pd_sheriff::MeasurementStore;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The staged, artifact-caching experiment engine.
pub struct Engine {
    plan: RunPlan,
    world: World,
    executor: Executor,
    observer: Arc<dyn RunObserver>,
    /// Read-through artifact store directory (see [`Engine::with_artifacts`]).
    artifacts_dir: Option<PathBuf>,
    /// Provenance stamped into manifests this engine writes.
    provenance: Provenance,
    /// The declarative spec that produced this engine's plan, if any
    /// (recorded verbatim in manifests this engine writes).
    spec: Option<ScenarioSpec>,
    /// Stages whose artifact came off disk rather than being computed
    /// (such stages are skipped by [`Engine::save_artifacts`] — their
    /// bytes are already in the store).
    loaded_stages: Vec<StageKind>,
    /// Per-domain frame cache the analysis stage reuses across repeated
    /// `analyze()` calls; shared across sweep arms built by one builder.
    frames: Arc<FrameCache>,
    /// Payload format for artifacts this engine saves.
    store_format: StoreFormat,
    /// Shared cache of loaded (deserialized) store artifacts, when one
    /// is attached: concurrent engines whose fingerprints coincide share
    /// one `Arc` per artifact instead of each paying a disk load.
    stores: Option<Arc<StoreCache>>,
    crowd: Option<Arc<CrowdArtifact>>,
    crawl: Option<Arc<CrawlArtifact>>,
    personas: Option<Arc<PersonaArtifact>>,
    /// Chunked handle onto an on-disk binary crowd payload: analysis
    /// streams its rows per domain instead of materializing `crowd`.
    crowd_chunked: Option<ChunkedPayload>,
    /// The cleaning report from the chunked crowd payload's meta chunk
    /// (present exactly when `crowd_chunked` is).
    crowd_cleaning: Option<CleaningReport>,
    /// Chunked handle onto an on-disk binary crawl payload.
    crawl_chunked: Option<ChunkedPayload>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("plan", &self.plan)
            .field("executor", &self.executor)
            .field("artifacts_dir", &self.artifacts_dir)
            .field("crowd_cached", &self.crowd.is_some())
            .field("crawl_cached", &self.crawl.is_some())
            .field("personas_cached", &self.personas.is_some())
            .finish()
    }
}

/// What [`Engine::load_artifacts`] found in a store, per measurement
/// stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadSummary {
    /// Stages loaded into the engine's cache.
    pub loaded: Vec<StageKind>,
    /// Stages the manifest does not list.
    pub missing: Vec<StageKind>,
    /// Stages stored under a different fingerprint (produced by another
    /// plan).
    pub stale: Vec<StageKind>,
    /// Stages whose files are corrupt or unreadable.
    pub corrupt: Vec<StageKind>,
}

impl LoadSummary {
    /// True when every measurement stage (crowd, crawl, personas) loaded.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.loaded.len() == 3
    }
}

/// What [`Engine::save_artifacts`] wrote, per stage name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SaveSummary {
    /// Stages serialized to the store in this call.
    pub saved: Vec<&'static str>,
    /// Cached stages that were already in the store under the same
    /// fingerprint (e.g. because they were loaded from it).
    pub fresh: Vec<&'static str>,
}

impl Engine {
    /// Builds an engine for a run plan: assembles the world, then
    /// applies the plan's vantage subset and desynchronization skew to
    /// the fan-out engine (the only moment they can be set).
    #[must_use]
    pub fn from_plan(plan: RunPlan, executor: Executor, observer: Arc<dyn RunObserver>) -> Self {
        let world = stage::observed(observer.as_ref(), StageKind::Build, || {
            let mut world = World::build(&plan.config);
            if let Some(labels) = &plan.vantage_labels {
                world.sheriff = world.sheriff.clone().with_vantage_subset(labels);
            }
            if plan.desync != pd_net::clock::SimDuration::ZERO {
                world.sheriff = world.sheriff.clone().with_desync(plan.desync);
            }
            // Emitted inside the stage window so observers attribute it
            // to this run's build stage.
            observer.counter(
                StageKind::Build,
                "vantage_points",
                world.sheriff.vantage_points().len() as u64,
            );
            world
        });
        let provenance = Provenance::new(
            "custom",
            "",
            "custom",
            plan.config.seed.value(),
            executor.threads(),
        );
        Engine {
            plan,
            world,
            executor,
            observer,
            artifacts_dir: None,
            provenance,
            spec: None,
            loaded_stages: Vec::new(),
            frames: Arc::new(FrameCache::new()),
            store_format: StoreFormat::Json,
            stores: None,
            crowd: None,
            crawl: None,
            personas: None,
            crowd_chunked: None,
            crowd_cleaning: None,
            crawl_chunked: None,
        }
    }

    /// Attaches an artifact-store directory as a transparent
    /// read-through cache: every stage checks the store (by fingerprint,
    /// see [`crate::store`]) before computing. Loads are reported
    /// through [`RunObserver::stage_loaded`]; nothing is written until
    /// [`Engine::save_artifacts`].
    #[must_use]
    pub fn with_artifacts(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifacts_dir = Some(dir.into());
        self
    }

    /// Overrides the provenance stamped into manifests this engine
    /// writes (the builder does this with the scenario name, sweep-arm
    /// label and profile).
    #[must_use]
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = provenance;
        self
    }

    /// Records the declarative spec this engine's plan was lowered from;
    /// manifests the engine writes then carry the exact spec, so a store
    /// is reproducible from its own metadata (`pd artifacts ls`).
    #[must_use]
    pub fn with_spec(mut self, spec: ScenarioSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The spec this engine was built from, if it came from one.
    #[must_use]
    pub fn spec(&self) -> Option<&ScenarioSpec> {
        self.spec.as_ref()
    }

    /// Replaces the engine's frame cache with a shared one (the builder
    /// does this so every sweep arm reuses per-domain frames keyed by
    /// the same upstream fingerprints).
    #[must_use]
    pub fn with_frame_cache(mut self, frames: Arc<FrameCache>) -> Self {
        self.frames = frames;
        self
    }

    /// The per-domain frame cache in force.
    #[must_use]
    pub fn frame_cache(&self) -> &Arc<FrameCache> {
        &self.frames
    }

    /// Attaches a shared [`StoreCache`]: artifacts this engine loads
    /// from disk are parked there (keyed by stage + measurement
    /// fingerprint), and loads check it before touching disk — so
    /// concurrent engines re-analyzing the same measurements share one
    /// `Arc` per artifact. Computed artifacts stay engine-private.
    #[must_use]
    pub fn with_store_cache(mut self, stores: Arc<StoreCache>) -> Self {
        self.stores = Some(stores);
        self
    }

    /// The shared store cache in force, if any.
    #[must_use]
    pub fn store_cache(&self) -> Option<&Arc<StoreCache>> {
        self.stores.as_ref()
    }

    /// Sets the payload format artifacts are saved in (default
    /// [`StoreFormat::Json`]; [`StoreFormat::Binary`] for the compact
    /// chunked encoding). Loading auto-detects per entry, so this only
    /// shapes what [`Engine::save_artifacts`] and
    /// [`Engine::save_analysis`] write.
    #[must_use]
    pub fn with_store_format(mut self, format: StoreFormat) -> Self {
        self.store_format = format;
        self
    }

    /// The payload format in force for saves.
    #[must_use]
    pub fn store_format(&self) -> StoreFormat {
        self.store_format
    }

    /// The attached read-through store directory, if any.
    #[must_use]
    pub fn artifacts_dir(&self) -> Option<&Path> {
        self.artifacts_dir.as_deref()
    }

    /// Stages whose artifacts were satisfied from a store instead of
    /// computed, in load order.
    #[must_use]
    pub fn loaded_stages(&self) -> &[StageKind] {
        &self.loaded_stages
    }

    /// The assembled world (read access for examples and diagnostics).
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The plan in force.
    #[must_use]
    pub fn plan(&self) -> &RunPlan {
        &self.plan
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.plan.config
    }

    /// The scheduler in force.
    #[must_use]
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Probes the attached read-through store for one stage; a validated
    /// hit is reported via [`RunObserver::stage_loaded`] and remembered
    /// so [`Engine::save_artifacts`] does not rewrite it. Any failure
    /// (no store, stale fingerprint, corrupt file) is a cache miss: the
    /// caller computes. `pd artifacts ls` is the diagnostic surface for
    /// unhealthy stores.
    fn probe_store<T: serde::Deserialize + Send + Sync + 'static>(
        &mut self,
        kind: StageKind,
    ) -> Option<Arc<T>> {
        let dir = self.artifacts_dir.as_deref()?;
        let fp = store::measurement_fingerprint(kind, &self.plan)?;
        // A shared-cache hit is as trustworthy as the disk load that
        // populated it: the fingerprint key certifies the bytes.
        if let Some(stores) = &self.stores {
            if let Some(hit) = stores.get::<T>(kind, fp.as_u64()) {
                self.observer.stage_loaded(kind, &fp.to_string());
                self.loaded_stages.push(kind);
                return Some(hit);
            }
        }
        if !ArtifactStore::is_store(dir) {
            return None;
        }
        let store = ArtifactStore::open(dir).ok()?;
        let artifact = Arc::new(store.load::<T>(kind.as_str(), fp).ok()?);
        let artifact = self.cache_loaded(kind, fp.as_u64(), artifact);
        self.observer.stage_loaded(kind, &fp.to_string());
        self.loaded_stages.push(kind);
        Some(artifact)
    }

    /// Parks a just-loaded artifact in the shared [`StoreCache`] (when
    /// one is attached) and returns the canonical `Arc` — under a racing
    /// double-load the first insert wins, so every engine ends up
    /// holding the same allocation.
    fn cache_loaded<T: Send + Sync + 'static>(
        &self,
        kind: StageKind,
        fingerprint: u64,
        artifact: Arc<T>,
    ) -> Arc<T> {
        match &self.stores {
            Some(stores) => stores.insert(kind, fingerprint, artifact),
            None => artifact,
        }
    }

    /// Probes the attached store for a **binary** entry of `kind` and
    /// opens it as a chunked handle (fingerprint- and checksum-checked,
    /// rows left on disk). `None` when there is no store, the entry is
    /// missing/JSON/stale/corrupt — the caller falls back to
    /// [`Engine::probe_store`] or computing.
    fn probe_chunked(&mut self, kind: StageKind) -> Option<ChunkedPayload> {
        let dir = self.artifacts_dir.as_deref()?;
        if !ArtifactStore::is_store(dir) {
            return None;
        }
        let store = ArtifactStore::open(dir).ok()?;
        if store.entry(kind.as_str())?.store_format() != StoreFormat::Binary {
            return None;
        }
        let fp = store::measurement_fingerprint(kind, &self.plan)?;
        let payload = store.open_chunked(kind.as_str(), fp).ok()?;
        self.observer.stage_loaded(kind, &fp.to_string());
        self.loaded_stages.push(kind);
        Some(payload)
    }

    /// The crowd campaign artifact: from the in-memory cache, else from
    /// the attached artifact store (fingerprint permitting), else
    /// computed by running the stage.
    pub fn crowd(&mut self) -> &CrowdArtifact {
        if self.crowd.is_none() {
            self.crowd = self.probe_store(StageKind::Crowd);
        }
        if self.crowd.is_none() {
            self.crowd = Some(Arc::new(stage::crowd_stage(
                &self.world,
                &self.plan,
                &self.executor,
                self.observer.as_ref(),
            )));
        }
        self.crowd.as_deref().expect("just computed")
    }

    /// The crawl artifact, cached after the first call (store-backed
    /// like [`Engine::crowd`]). With [`RunPlan::targets_from_crowd`]
    /// set, the crowd stage runs (or loads) first and the crawl targets
    /// are the domains with confirmed crowd variation instead of the
    /// paper's fixed list.
    pub fn crawl(&mut self) -> &CrawlArtifact {
        if self.crawl.is_none() {
            self.crawl = self.probe_store(StageKind::Crawl);
        }
        if self.crawl.is_none() {
            let targets = match self.plan.targets_from_crowd {
                Some(min_confirmed) => {
                    self.crowd();
                    stage::targets_from_crowd(
                        &self.world,
                        &self.crowd.as_ref().expect("crowd cached above").cleaned,
                        min_confirmed,
                    )
                }
                None => self.world.paper_crawl_targets(),
            };
            self.crawl = Some(Arc::new(stage::crawl_stage(
                &self.world,
                &self.plan.config,
                &targets,
                &self.executor,
                self.observer.as_ref(),
            )));
        }
        self.crawl.as_deref().expect("just computed")
    }

    /// The persona/login artifact, cached after the first call
    /// (store-backed like [`Engine::crowd`]).
    pub fn personas(&mut self) -> &PersonaArtifact {
        if self.personas.is_none() {
            self.personas = self.probe_store(StageKind::Personas);
        }
        if self.personas.is_none() {
            self.personas = Some(Arc::new(stage::persona_stage(
                &self.world,
                &self.plan.config,
                &self.executor,
                self.observer.as_ref(),
            )));
        }
        self.personas.as_deref().expect("just computed")
    }

    /// Eagerly loads every measurement artifact the store holds for this
    /// engine's plan, reporting per-stage outcomes. Unlike the passive
    /// read-through of [`Engine::with_artifacts`], this distinguishes
    /// *why* a stage did not load — `pd rerun` uses it to refuse
    /// incomplete or stale stores instead of silently re-measuring.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoManifest`] (or another open failure) when `dir`
    /// is not a readable artifact store.
    pub fn load_artifacts(&mut self, dir: &Path) -> Result<LoadSummary, StoreError> {
        let store = ArtifactStore::open(dir)?;
        let mut summary = LoadSummary::default();
        let outcome =
            |kind: StageKind, summary: &mut LoadSummary, loaded: bool, err: Option<&StoreError>| {
                if loaded {
                    summary.loaded.push(kind);
                } else {
                    match err {
                        Some(StoreError::MissingStage { .. }) => summary.missing.push(kind),
                        Some(StoreError::StaleFingerprint { .. }) => summary.stale.push(kind),
                        _ => summary.corrupt.push(kind),
                    }
                }
            };
        // Binary crowd/crawl entries open as chunked handles: the rows
        // stay on disk and `analyze()` streams them one domain chunk at
        // a time instead of materializing the whole payload.
        let mut streamed: Vec<StageKind> = Vec::new();
        for kind in [StageKind::Crowd, StageKind::Crawl] {
            let chunked_cached = match kind {
                StageKind::Crowd => self.crowd_chunked.is_some(),
                _ => self.crawl_chunked.is_some(),
            };
            if chunked_cached {
                // A previous load already opened this stage's handle.
                streamed.push(kind);
                outcome(kind, &mut summary, true, None);
                continue;
            }
            let in_memory = match kind {
                StageKind::Crowd => self.crowd.is_some(),
                _ => self.crawl.is_some(),
            };
            if in_memory
                || !store
                    .entry(kind.as_str())
                    .is_some_and(|e| e.store_format() == StoreFormat::Binary)
            {
                continue;
            }
            streamed.push(kind);
            let fp = store::measurement_fingerprint(kind, &self.plan)
                .expect("measurement stage has a fingerprint");
            match store.open_chunked(kind.as_str(), fp) {
                Ok(payload) => {
                    if kind == StageKind::Crowd {
                        match chunked_cleaning(&payload) {
                            Some(cleaning) => self.crowd_cleaning = Some(cleaning),
                            None => {
                                outcome(kind, &mut summary, false, None);
                                continue;
                            }
                        }
                        self.crowd_chunked = Some(payload);
                    } else {
                        self.crawl_chunked = Some(payload);
                    }
                    self.observer.stage_loaded(kind, &fp.to_string());
                    self.loaded_stages.push(kind);
                    outcome(kind, &mut summary, true, None);
                }
                Err(e) => outcome(kind, &mut summary, false, Some(&e)),
            }
        }
        macro_rules! load_stage {
            ($kind:expr, $slot:ident, $ty:ty) => {
                if streamed.contains(&$kind) {
                    // Resolved above as a chunked handle (or reported).
                } else if self.$slot.is_none() {
                    let fp = store::measurement_fingerprint($kind, &self.plan)
                        .expect("measurement stage has a fingerprint");
                    match store.load::<$ty>($kind.as_str(), fp) {
                        Ok(artifact) => {
                            self.observer.stage_loaded($kind, &fp.to_string());
                            self.loaded_stages.push($kind);
                            self.$slot =
                                Some(self.cache_loaded($kind, fp.as_u64(), Arc::new(artifact)));
                            outcome($kind, &mut summary, true, None);
                        }
                        Err(e) => outcome($kind, &mut summary, false, Some(&e)),
                    }
                } else {
                    // Already in memory: counts as loaded for completeness.
                    outcome($kind, &mut summary, true, None);
                }
            };
        }
        load_stage!(StageKind::Crowd, crowd, CrowdArtifact);
        load_stage!(StageKind::Crawl, crawl, CrawlArtifact);
        load_stage!(StageKind::Personas, personas, PersonaArtifact);
        Ok(summary)
    }

    /// Persists every cached measurement artifact to `dir`, creating the
    /// store (with this engine's provenance and plan) if needed. Stages
    /// already in the store under the current fingerprint are skipped.
    ///
    /// # Errors
    ///
    /// [`StoreError::PlanMismatch`] when `dir` already holds artifacts
    /// produced by a different plan (delete the directory first if you
    /// really mean to replace them); [`StoreError::Io`] (or a manifest
    /// parse error) when the store cannot be created or written.
    pub fn save_artifacts(&self, dir: &Path) -> Result<SaveSummary, StoreError> {
        let mut store = self.open_or_create_store(dir)?;
        let mut summary = SaveSummary::default();
        macro_rules! save_stage {
            ($kind:expr, $slot:ident) => {
                if let Some(artifact) = &self.$slot {
                    let fp = store::measurement_fingerprint($kind, &self.plan)
                        .expect("measurement stage has a fingerprint");
                    let name = $kind.as_str();
                    if store
                        .entry(name)
                        .is_some_and(|e| e.fingerprint == fp.to_string())
                    {
                        summary.fresh.push(name);
                    } else {
                        store.save(name, fp, &[], artifact.as_ref())?;
                        summary.saved.push(name);
                    }
                }
            };
        }
        save_stage!(StageKind::Crowd, crowd);
        save_stage!(StageKind::Crawl, crawl);
        save_stage!(StageKind::Personas, personas);
        Ok(summary)
    }

    /// Persists an analysis artifact to `dir`, recording the three
    /// measurement fingerprints as its upstream lineage. Call after
    /// [`Engine::save_artifacts`] so the manifest lists the full funnel.
    /// Like `save_artifacts`, an entry already stored under the current
    /// fingerprint is left untouched (returns its existing size).
    ///
    /// # Errors
    ///
    /// [`StoreError::PlanMismatch`] when `dir` holds another plan's
    /// artifacts; [`StoreError::Io`] (or a manifest parse error) when
    /// the store cannot be created or written.
    pub fn save_analysis(
        &self,
        dir: &Path,
        artifact: &AnalysisArtifact,
    ) -> Result<u64, StoreError> {
        let mut store = self.open_or_create_store(dir)?;
        let name = StageKind::Analysis.as_str();
        let fp = store::analysis_fingerprint(&self.plan);
        if let Some(entry) = store.entry(name) {
            if entry.fingerprint == fp.to_string() {
                return Ok(entry.bytes);
            }
        }
        let upstream = [
            store::crowd_fingerprint(&self.plan),
            store::crawl_fingerprint(&self.plan),
            store::personas_fingerprint(&self.plan),
        ];
        store.save(name, fp, &upstream, artifact)
    }

    /// Opens the store at `dir` if it was produced by this engine's
    /// plan, or creates it fresh if the directory is not a store yet.
    /// A store produced by a *different* plan (or one whose manifest is
    /// unreadable) is never clobbered: a paper-scale dataset must not
    /// die to a seed typo. The caller decides whether to delete the
    /// directory and retry (the CLI's `--overwrite-artifacts`).
    fn open_or_create_store(&self, dir: &Path) -> Result<ArtifactStore, StoreError> {
        let mut store = match ArtifactStore::open(dir) {
            Ok(existing) => {
                if existing.manifest().plan == store::PlanRecord::from_plan(&self.plan) {
                    existing
                } else {
                    return Err(StoreError::PlanMismatch {
                        dir: dir.display().to_string(),
                    });
                }
            }
            Err(StoreError::NoManifest { .. }) => {
                ArtifactStore::create(dir, self.provenance.clone(), &self.plan, self.spec.clone())?
            }
            Err(e) => return Err(e),
        };
        store.set_format(self.store_format);
        Ok(store)
    }

    /// Runs the analysis over the (cached) upstream artifacts and
    /// returns the analysis artifact. Upstream stages run at most once;
    /// calling this twice re-analyzes but does not re-measure.
    ///
    /// When the attached store holds a stage in the **binary chunked**
    /// format, its rows are streamed one domain chunk at a time (the
    /// `frames_chunks_loaded` counter reports how many) instead of
    /// deserializing the whole payload; a chunk that fails mid-read
    /// drops the handle and falls back to computing in memory.
    pub fn analyze(&mut self) -> AnalysisArtifact {
        self.personas();
        // Prefer streaming handles for the heavy measurement payloads.
        if self.crowd.is_none() && self.crowd_chunked.is_none() {
            if let Some(payload) = self.probe_chunked(StageKind::Crowd) {
                if let Some(cleaning) = chunked_cleaning(&payload) {
                    self.crowd_cleaning = Some(cleaning);
                    self.crowd_chunked = Some(payload);
                }
            }
        }
        if self.crawl.is_none() && self.crawl_chunked.is_none() {
            self.crawl_chunked = self.probe_chunked(StageKind::Crawl);
        }
        if let Some(analysis) = self.try_analyze_chunked() {
            return analysis;
        }
        self.crowd();
        self.crawl();
        stage::analysis_stage(
            &self.world,
            &self.plan,
            self.crowd.as_deref().expect("cached above"),
            self.crawl.as_deref().expect("cached above"),
            self.personas.as_deref().expect("cached above"),
            &self.frames,
            &self.executor,
            self.observer.as_ref(),
        )
    }

    /// The chunked analysis attempt: runs [`stage::analysis_over`] with
    /// whatever mix of in-memory artifacts and chunked handles the
    /// engine holds. `None` when no handle is open (nothing to stream)
    /// or a chunk failed mid-read — the handles are dropped so the
    /// caller recomputes in memory.
    fn try_analyze_chunked(&mut self) -> Option<AnalysisArtifact> {
        if self.crowd_chunked.is_none() && self.crawl_chunked.is_none() {
            return None;
        }
        // Materialize whichever heavy stage has no handle (mixed-format
        // stores: e.g. a v2 JSON crawl next to a v3 binary crowd).
        if self.crowd.is_none() && self.crowd_chunked.is_none() {
            self.crowd();
        }
        if self.crawl.is_none() && self.crawl_chunked.is_none() {
            self.crawl();
        }
        let keys = stage::FrameKeys {
            cache: self.frames.as_ref(),
            crowd: store::crowd_fingerprint(&self.plan).as_u64(),
            crawl: store::crawl_fingerprint(&self.plan).as_u64(),
        };
        let (crowd_raw, crowd_clean, cleaning) = match (&self.crowd, &self.crowd_chunked) {
            (Some(art), _) => (
                stage::StoreSource::Memory(&art.raw),
                stage::StoreSource::Memory(&art.cleaned),
                art.cleaning,
            ),
            (None, Some(payload)) => (
                stage::StoreSource::Chunked(payload, "raw"),
                stage::StoreSource::Chunked(payload, "cleaned"),
                *self
                    .crowd_cleaning
                    .as_ref()
                    .expect("cleaning stashed with the crowd handle"),
            ),
            (None, None) => unreachable!("crowd materialized above"),
        };
        let crawl_store = match (&self.crawl, &self.crawl_chunked) {
            (Some(art), _) => stage::StoreSource::Memory(&art.store),
            (None, Some(payload)) => stage::StoreSource::Chunked(payload, "store"),
            (None, None) => unreachable!("crawl materialized above"),
        };
        match stage::analysis_over(
            &self.world,
            &self.plan.config,
            crowd_raw,
            crowd_clean,
            cleaning,
            crawl_store,
            self.personas.as_deref().expect("personas cached"),
            Some(keys),
            &self.executor,
            self.observer.as_ref(),
        ) {
            Ok(analysis) => Some(analysis),
            Err(_) => {
                // A chunk rotted between open and read: recompute from
                // scratch rather than serve a partial analysis.
                self.crowd_chunked = None;
                self.crowd_cleaning = None;
                self.crawl_chunked = None;
                None
            }
        }
    }

    /// Runs the full pipeline and returns the report.
    pub fn run(&mut self) -> Report {
        self.analyze().report
    }
}

/// The cleaning report parked in a chunked crowd payload's meta chunk
/// (the meta chunk is the artifact with its row arrays emptied, so it
/// deserializes as a hollow [`CrowdArtifact`]).
fn chunked_cleaning(payload: &ChunkedPayload) -> Option<CleaningReport> {
    let meta = payload.meta_value().ok()?;
    let hollow: CrowdArtifact = serde::Deserialize::deserialize(&meta).ok()?;
    Some(hollow.cleaning)
}

/// Why a builder could not produce an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The requested scenario name is not registered.
    UnknownScenario(String),
    /// The supplied [`ScenarioSpec`] failed validation.
    InvalidSpec {
        /// The spec's name (possibly empty).
        name: String,
        /// The validation failure, rendered.
        detail: String,
    },
    /// `build()` was called on a sweep scenario; use
    /// [`ExperimentBuilder::build_variants`].
    SweepScenario(String),
    /// A config override was combined with a scenario whose sweep arms
    /// differ *through* their configs (e.g. `seed-sweep`,
    /// `locale-sweep`); overriding would erase the arm differences.
    ConfigOverridesSweep(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownScenario(name) => write!(f, "unknown scenario {name:?}"),
            BuildError::InvalidSpec { name, detail } => {
                write!(f, "invalid scenario spec {name:?}: {detail}")
            }
            BuildError::SweepScenario(name) => write!(
                f,
                "scenario {name:?} is a sweep; use build_variants() to get every arm"
            ),
            BuildError::ConfigOverridesSweep(name) => write!(
                f,
                "scenario {name:?} sweeps over its config; a config override would \
                 make every arm identical"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Engine`]s: scenario + seed + profile + threads +
/// observer.
///
/// ```
/// use pd_core::{Experiment, Profile};
///
/// let mut engine = Experiment::builder()
///     .scenario("paper")
///     .profile(Profile::Smoke)
///     .seed(42)
///     .threads(2)
///     .build()
///     .expect("paper is a registered single-run scenario");
/// let report = engine.run();
/// assert!(report.summary.crowd_requests > 0);
/// ```
pub struct ExperimentBuilder {
    registry: ScenarioRegistry,
    scenario: Option<String>,
    spec: Option<ScenarioSpec>,
    config: Option<ExperimentConfig>,
    seed: Option<u64>,
    profile: Profile,
    threads: usize,
    observer: Arc<dyn RunObserver>,
    artifacts: Option<PathBuf>,
    store_format: StoreFormat,
    frame_cache: Option<Arc<FrameCache>>,
    store_cache: Option<Arc<StoreCache>>,
}

impl std::fmt::Debug for ExperimentBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentBuilder")
            .field("scenario", &self.scenario)
            .field("seed", &self.seed)
            .field("profile", &self.profile)
            .field("threads", &self.threads)
            .finish()
    }
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            registry: ScenarioRegistry::builtin(),
            scenario: None,
            spec: None,
            config: None,
            seed: None,
            profile: Profile::Paper,
            threads: 1,
            observer: Arc::new(NullObserver),
            artifacts: None,
            store_format: StoreFormat::Json,
            frame_cache: None,
            store_cache: None,
        }
    }
}

impl ExperimentBuilder {
    /// A builder with the built-in scenario registry, the `paper`
    /// scenario, the paper seed and profile, one thread, no observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects a scenario by registry name (default: `paper`).
    #[must_use]
    pub fn scenario(mut self, name: &str) -> Self {
        self.scenario = Some(name.to_owned());
        self
    }

    /// Runs a one-off declarative spec instead of a registered scenario
    /// (what `pd run --spec FILE.json` does). Wins over
    /// [`ExperimentBuilder::scenario`]; the spec is validated at build
    /// time and recorded in any artifact manifest the run writes.
    #[must_use]
    pub fn spec(mut self, spec: ScenarioSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Replaces the scenario registry (to add custom scenarios before
    /// selecting one by name).
    #[must_use]
    pub fn registry(mut self, registry: ScenarioRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Overrides the experiment configuration. The selected scenario
    /// still applies its engine knobs (desync, cleaning, vantage subset)
    /// on top of this config, and an explicit [`ExperimentBuilder::seed`]
    /// still wins over the override's seed. Scenarios whose sweep arms
    /// differ through their configs (`seed-sweep`, `locale-sweep`)
    /// reject an override at build time.
    #[must_use]
    pub fn config(mut self, config: ExperimentConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the root seed (default: the paper seed, 1307).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the workload profile (default: [`Profile::Paper`]).
    #[must_use]
    pub fn profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the worker-thread count (default 1 = sequential; 0 = the
    /// machine's available parallelism). The report is byte-identical at
    /// any value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a run observer (keep a clone of the `Arc` to read
    /// timings afterwards).
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn RunObserver>) -> Self {
        self.observer = observer;
        self
    }

    /// Attaches an artifact-store directory as a read-through cache
    /// (see [`Engine::with_artifacts`]). Sweep scenarios get one store
    /// per arm, in a subdirectory named after the arm label.
    #[must_use]
    pub fn artifacts(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifacts = Some(dir.into());
        self
    }

    /// Sets the payload format for artifacts the built engines save
    /// (default [`StoreFormat::Json`]; what `pd run --format` drives).
    #[must_use]
    pub fn store_format(mut self, format: StoreFormat) -> Self {
        self.store_format = format;
        self
    }

    /// Shares a caller-owned [`FrameCache`] with every engine this
    /// builder produces, instead of the per-build cache it would
    /// otherwise create. Long-lived callers (the `pd serve` daemon) pass
    /// one process-wide cache here so repeated runs over the same
    /// measurements reuse assembled frames across builds — frames are
    /// keyed by measurement fingerprint, so unrelated workloads never
    /// collide.
    #[must_use]
    pub fn frame_cache(mut self, frames: Arc<FrameCache>) -> Self {
        self.frame_cache = Some(frames);
        self
    }

    /// Shares a caller-owned [`StoreCache`] with every engine this
    /// builder produces: measurement artifacts loaded from the attached
    /// store are parked in (and served from) the shared cache, so
    /// concurrent runs over the same on-disk crawl hold one `Arc` per
    /// artifact instead of N deserialized copies. Like the frame cache,
    /// entries are keyed by measurement fingerprint — unrelated
    /// workloads never collide.
    #[must_use]
    pub fn store_cache(mut self, stores: Arc<StoreCache>) -> Self {
        self.store_cache = Some(stores);
        self
    }

    /// The frame cache the built engines will share: the injected one,
    /// or a fresh per-build cache.
    fn shared_frames(&self) -> Arc<FrameCache> {
        self.frame_cache
            .clone()
            .unwrap_or_else(|| Arc::new(FrameCache::new()))
    }

    /// Resolves the scenario (an explicit spec, or a registry name) into
    /// the producing spec and its labeled run plans.
    fn resolve(&self) -> Result<(ScenarioSpec, Vec<(String, RunPlan)>), BuildError> {
        let spec: &ScenarioSpec = match &self.spec {
            Some(spec) => spec,
            None => {
                let name = self.scenario.as_deref().unwrap_or("paper");
                self.registry
                    .get(name)
                    .ok_or_else(|| BuildError::UnknownScenario(name.to_owned()))?
            }
        };
        let name = spec.name.clone();
        let params = ScenarioParams {
            seed: self
                .seed
                .unwrap_or_else(|| pd_util::seed::EXPERIMENT_SEED.value()),
            profile: self.profile,
        };
        let mut variants = spec
            .lower(&params)
            .map_err(|e| BuildError::InvalidSpec {
                name: name.clone(),
                detail: e.to_string(),
            })?
            .into_variants();
        if let Some(config) = &self.config {
            // A config override is only meaningful when the arms do not
            // differ through their configs — otherwise it would silently
            // flatten the sweep.
            if variants
                .iter()
                .any(|(_, plan)| plan.config != variants[0].1.config)
            {
                return Err(BuildError::ConfigOverridesSweep(name));
            }
            // An explicit .seed() composes with the override instead of
            // being silently discarded by it.
            let mut config = config.clone();
            if let Some(seed) = self.seed {
                config.seed = pd_util::Seed::new(seed);
            }
            for (_, plan) in &mut variants {
                plan.config = config.clone();
            }
        }
        Ok((spec.clone(), variants))
    }

    /// Assembles one arm's engine: provenance from the scenario/label,
    /// the shared frame cache, and (with
    /// [`ExperimentBuilder::artifacts`]) the arm's store subdirectory.
    /// The single place this wiring exists — `build`, `build_variants`
    /// and `run_sweep` all go through it, so they cannot drift.
    /// `executor` is the executor the engine will actually run on (the
    /// full budget, or the intra-arm share under `run_sweep`); its
    /// thread count is what the provenance records.
    fn arm_engine(
        &self,
        spec: &ScenarioSpec,
        label: &str,
        plan: RunPlan,
        executor: Executor,
        observer: Arc<dyn RunObserver>,
        frames: &Arc<FrameCache>,
    ) -> Engine {
        let provenance = Provenance::new(
            &spec.name,
            label,
            self.profile.name(),
            plan.config.seed.value(),
            executor.threads(),
        );
        let mut engine = Engine::from_plan(plan, executor, observer)
            .with_provenance(provenance)
            .with_spec(spec.clone())
            .with_frame_cache(Arc::clone(frames))
            .with_store_format(self.store_format);
        if let Some(stores) = &self.store_cache {
            engine = engine.with_store_cache(Arc::clone(stores));
        }
        if let Some(dir) = &self.artifacts {
            let arm_dir = if label.is_empty() {
                dir.clone()
            } else {
                dir.join(label)
            };
            engine = engine.with_artifacts(arm_dir);
        }
        engine
    }

    /// Builds the engine for a single-run scenario.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownScenario`] if the name is not registered;
    /// [`BuildError::SweepScenario`] if the scenario expands to more
    /// than one run (use [`ExperimentBuilder::build_variants`]).
    pub fn build(self) -> Result<Engine, BuildError> {
        let (spec, mut variants) = self.resolve()?;
        if variants.len() != 1 {
            return Err(BuildError::SweepScenario(spec.name));
        }
        let (label, plan) = variants.remove(0);
        let frames = self.shared_frames();
        Ok(self.arm_engine(
            &spec,
            &label,
            plan,
            Executor::new(self.threads),
            Arc::clone(&self.observer),
            &frames,
        ))
    }

    /// Builds one engine per scenario variant (a single-run scenario
    /// yields one engine labeled `""`). With [`ExperimentBuilder::artifacts`],
    /// each labeled arm gets its own store subdirectory.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownScenario`] if the name is not registered.
    pub fn build_variants(self) -> Result<Vec<(String, Engine)>, BuildError> {
        let (spec, variants) = self.resolve()?;
        let executor = Executor::new(self.threads);
        // One frame cache for the whole sweep: arms whose upstream
        // measurement fingerprints coincide reuse each other's frames.
        let frames = self.shared_frames();
        Ok(variants
            .into_iter()
            .map(|(label, plan)| {
                let engine = self.arm_engine(
                    &spec,
                    &label,
                    plan,
                    executor,
                    Arc::clone(&self.observer),
                    &frames,
                );
                (label, engine)
            })
            .collect())
    }

    /// Runs every scenario arm to completion, **fanning the arms across
    /// the deterministic executor**. This is the engine's sweep hot
    /// path: the thread budget is split arm-level × intra-arm
    /// ([`Executor::split`], never oversubscribing `threads`), every arm
    /// runs its full pipeline under an arm-scoped [`BufferedObserver`],
    /// and when all arms have joined the buffers are replayed into the
    /// builder's observer in label order — so observers see the exact
    /// event stream a serial sweep would have produced, and reports stay
    /// byte-identical at any thread count.
    ///
    /// Single-run scenarios work too (one arm labeled `""`, the whole
    /// budget intra-arm), so callers like the `pd` CLI can treat every
    /// scenario uniformly.
    ///
    /// Arms share the builder's [`FrameCache`]; with
    /// [`ExperimentBuilder::artifacts`], each labeled arm reads (and its
    /// returned engine later writes) its own store subdirectory.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownScenario`] if the name is not registered;
    /// [`BuildError::ConfigOverridesSweep`] under the same conditions as
    /// [`ExperimentBuilder::build_variants`].
    ///
    /// # Panics
    ///
    /// Propagates a panic from any arm.
    pub fn run_sweep(self) -> Result<Vec<SweepArmRun>, BuildError> {
        let (spec, variants) = self.resolve()?;
        let total = Executor::new(self.threads);
        let (arm_exec, intra) = total.split(variants.len());
        let frames = self.shared_frames();
        let buffers: Vec<Arc<BufferedObserver>> = variants
            .iter()
            .map(|_| Arc::new(BufferedObserver::new()))
            .collect();
        let runs = arm_exec.map_indexed(variants.len(), |i| {
            let (label, plan) = &variants[i];
            let observer = Arc::clone(&buffers[i]);
            if !label.is_empty() {
                observer.arm_started(label);
            }
            let mut engine = self.arm_engine(&spec, label, plan.clone(), intra, observer, &frames);
            let analysis = engine.analyze();
            // Between arms: drop interned strings only this arm's
            // transient frame shards were holding, so a long multi-arm
            // sweep does not accumulate every arm's domain set for the
            // process lifetime.
            pd_util::intern::purge_unreferenced();
            SweepArmRun {
                label: label.clone(),
                engine,
                analysis,
            }
        });
        // Arms may have finished in any order; the observer stream is
        // re-serialized in arm (label) order.
        for buffer in &buffers {
            buffer.replay(self.observer.as_ref());
        }
        // The arm buffers are done for: re-attach the builder's
        // observer so post-sweep engine calls (a re-analyze under new
        // knobs, a store probe) report live instead of into a buffer
        // nobody will replay.
        let mut runs = runs;
        for run in &mut runs {
            run.engine.observer = Arc::clone(&self.observer);
        }
        Ok(runs)
    }
}

/// One completed arm of [`ExperimentBuilder::run_sweep`]: its label, the
/// engine that ran it (still holding the cached stage artifacts, ready
/// for [`Engine::save_artifacts`]) and the analysis it produced.
#[derive(Debug)]
pub struct SweepArmRun {
    /// The scenario's arm label (`""` for single-run scenarios).
    pub label: String,
    /// The arm's engine, post-analysis.
    pub engine: Engine,
    /// The arm's analysis artifact (report included).
    pub analysis: AnalysisArtifact,
}

/// The original experiment driver, kept as a compatibility shim over the
/// staged engine. New code should prefer [`Experiment::builder`].
#[derive(Debug)]
pub struct Experiment {
    engine: Engine,
}

impl Experiment {
    /// Builds the world for `config` (sequential engine, no observer).
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment {
            engine: Engine::from_plan(
                RunPlan::new(config),
                Executor::serial(),
                Arc::new(NullObserver),
            ),
        }
    }

    /// The scenario/engine builder (the redesigned entry point).
    #[must_use]
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::new()
    }

    /// The world (read access for examples and diagnostics).
    #[must_use]
    pub fn world(&self) -> &World {
        self.engine.world()
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        self.engine.config()
    }

    /// Runs the full pipeline and produces the report.
    #[must_use]
    pub fn run(config: ExperimentConfig) -> Report {
        let mut exp = Experiment::new(config);
        exp.engine.run()
    }

    /// Stage 2: the crowd campaign plus cleaning. Returns (raw, cleaned,
    /// report). Recomputes on every call; use
    /// [`Engine::crowd`] for the cached artifact.
    #[must_use]
    pub fn run_crowd_phase(&mut self) -> (MeasurementStore, MeasurementStore, CleaningReport) {
        let artifact = stage::crowd_stage(
            self.engine.world(),
            self.engine.plan(),
            self.engine.executor(),
            &NullObserver,
        );
        (artifact.raw, artifact.cleaned, artifact.cleaning)
    }

    /// The paper's stated future work, implemented: attribute a
    /// retailer's price variation to specific request factors (country,
    /// city, session, day, login) by controlled probing. Returns `None`
    /// for unknown domains.
    #[must_use]
    pub fn attribute_factors(
        &self,
        domain: &str,
        products: usize,
    ) -> Option<pd_analysis::Attribution> {
        stage::attribute_factors(self.engine.world(), self.engine.config(), domain, products)
    }

    /// The automated version of the paper's manual tax/shipping check
    /// (see [`stage::is_tax_explained`]).
    #[must_use]
    pub fn is_tax_explained(&self, domain: &str) -> bool {
        stage::is_tax_explained(self.engine.world(), self.engine.config(), domain)
    }

    /// Stage 3: the systematic crawl of the paper's 21 retailers.
    /// Recomputes on every call; use [`Engine::crawl`] for the cached
    /// artifact.
    #[must_use]
    pub fn run_crawl_phase(
        &self,
    ) -> (MeasurementStore, Vec<pd_crawler::crawl::RetailerCrawlStats>) {
        let artifact = stage::crawl_stage(
            self.engine.world(),
            self.engine.config(),
            &self.engine.world().paper_crawl_targets(),
            self.engine.executor(),
            &NullObserver,
        );
        (artifact.store, artifact.stats)
    }

    /// Data-driven variant of target selection (used by the
    /// `crawl_retailers` example and the crowd-value ablation): rank
    /// domains by confirmed crowd variation instead of taking the
    /// paper's list.
    #[must_use]
    pub fn targets_from_crowd(
        &self,
        cleaned: &MeasurementStore,
        min_confirmed: usize,
    ) -> Vec<String> {
        stage::targets_from_crowd(self.engine.world(), cleaned, min_confirmed)
    }

    /// Stage 4: every figure and table.
    #[must_use]
    pub fn analyze(
        &self,
        crowd_raw: &MeasurementStore,
        crowd_clean: &MeasurementStore,
        cleaning: CleaningReport,
        crawl_store: &MeasurementStore,
    ) -> Report {
        let world = self.engine.world();
        let config = self.engine.config();
        let exec = self.engine.executor();
        let personas = stage::persona_stage(world, config, exec, &NullObserver);
        stage::analysis_over(
            world,
            config,
            stage::StoreSource::Memory(crowd_raw),
            stage::StoreSource::Memory(crowd_clean),
            cleaning,
            stage::StoreSource::Memory(crawl_store),
            &personas,
            None,
            exec,
            &NullObserver,
        )
        .expect("in-memory analysis sources cannot fail")
        .report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_small_pipeline_runs() {
        let report = Experiment::run(ExperimentConfig::small(1307));
        assert!(report.summary.crowd_requests > 100);
        assert!(report.summary.crawled_retailers == 21);
        assert!(!report.fig1.is_empty());
        assert!(!report.fig3.is_empty());
        assert!(!report.fig5_points.is_empty());
        assert_eq!(report.fig8a.cells.len(), 30, "6×6 grid minus diagonal");
        assert!(report.persona.null_result);
    }

    #[test]
    fn crowd_phase_cleaning_drops_noise() {
        let mut exp = Experiment::new(ExperimentConfig::small(2));
        let (raw, cleaned, report) = exp.run_crowd_phase();
        assert!(cleaned.len() <= raw.len());
        assert_eq!(report.kept, cleaned.len());
        // Default noise rates (7 %) over 150 checks: some drops expected.
        assert!(report.dropped_inconsistent > 0, "{report:?}");
    }

    #[test]
    fn tax_check_catches_the_inliner_confound() {
        let exp = Experiment::new(ExperimentConfig::small(3));
        // Filler #0 inlines tax by construction (the injected confound).
        assert!(exp.is_tax_explained("www.shop-000.example"));
        // Real discriminators are not explained away by taxes.
        assert!(!exp.is_tax_explained("www.digitalrev.com"));
        assert!(!exp.is_tax_explained("www.energie.it"));
        // Unknown domains are trivially not tax-explained.
        assert!(!exp.is_tax_explained("gone.example"));
    }

    #[test]
    fn targets_from_crowd_rank_real_discriminators() {
        let mut exp = Experiment::new(ExperimentConfig::small(3));
        let (_, cleaned, _) = exp.run_crowd_phase();
        let targets = exp.targets_from_crowd(&cleaned, 1);
        assert!(!targets.is_empty());
        // Every selected target must actually be discriminating (no
        // false positives at threshold 1 thanks to the band filter).
        for t in &targets {
            let spec = exp
                .world()
                .web
                .server_by_domain(t)
                .map(|s| s.spec().clone());
            if let Some(spec) = spec {
                assert!(
                    spec.is_discriminating(),
                    "{t} selected but not discriminating"
                );
            }
        }
    }

    #[test]
    fn legacy_run_equals_builder_paper_scenario() {
        let legacy = Experiment::run(ExperimentConfig::smoke(1307));
        let mut engine = Experiment::builder()
            .scenario("paper")
            .profile(Profile::Smoke)
            .seed(1307)
            .build()
            .expect("paper scenario builds");
        assert_eq!(legacy.to_json(), engine.run().to_json());
    }

    #[test]
    fn builder_rejects_unknown_and_sweep_scenarios() {
        assert!(matches!(
            Experiment::builder().scenario("nope").build(),
            Err(BuildError::UnknownScenario(_))
        ));
        assert!(matches!(
            Experiment::builder().scenario("seed-sweep").build(),
            Err(BuildError::SweepScenario(_))
        ));
        let variants = Experiment::builder()
            .scenario("seed-sweep")
            .profile(Profile::Smoke)
            .build_variants()
            .expect("sweep builds variants");
        assert_eq!(variants.len(), 3);
    }

    #[test]
    fn config_override_rejected_on_config_driven_sweeps() {
        // seed-sweep arms differ through their configs: a wholesale
        // override would silently run the same experiment three times.
        assert!(matches!(
            Experiment::builder()
                .scenario("seed-sweep")
                .config(ExperimentConfig::smoke(1))
                .build_variants(),
            Err(BuildError::ConfigOverridesSweep(_))
        ));
        // desync-ablation arms differ through an engine knob, not the
        // config — the override composes fine.
        let arms = Experiment::builder()
            .scenario("desync-ablation")
            .config(ExperimentConfig::smoke(1))
            .build_variants()
            .expect("engine-knob sweep accepts a config override");
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].1.config().crowd.checks, 60);
    }

    #[test]
    fn explicit_seed_wins_over_config_override() {
        let engine = Experiment::builder()
            .config(ExperimentConfig::smoke(1))
            .seed(42)
            .build()
            .expect("paper scenario with explicit config");
        assert_eq!(engine.config().seed.value(), 42);
    }

    fn tmp_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pd-engine-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_then_load_artifacts_skips_measurement_stages() {
        use crate::observer::TimingObserver;
        let dir = tmp_store("round-trip");
        let mut producer = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .build()
            .expect("smoke builds");
        let report = producer.run();
        let saved = producer.save_artifacts(&dir).expect("save");
        assert_eq!(saved.saved, vec!["crowd", "crawl", "personas"]);

        let observer = Arc::new(TimingObserver::new());
        let mut consumer = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .observer(observer.clone())
            .artifacts(dir.clone())
            .build()
            .expect("smoke builds");
        let reloaded = consumer.run();
        assert_eq!(report.to_json(), reloaded.to_json());
        assert_eq!(report.render_all(), reloaded.render_all());
        for kind in [StageKind::Crowd, StageKind::Crawl, StageKind::Personas] {
            assert_eq!(observer.starts(kind), 0, "{kind} must come from disk");
            assert_eq!(observer.loads(kind), 1, "{kind} load must be observed");
        }
        assert_eq!(
            observer.starts(StageKind::Analysis),
            1,
            "analysis recomputes"
        );

        // Saving again is a no-op: every cached artifact is fresh.
        let resaved = consumer.save_artifacts(&dir).expect("re-save");
        assert!(resaved.saved.is_empty(), "{resaved:?}");
        assert_eq!(resaved.fresh, vec!["crowd", "crawl", "personas"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_store_round_trip_streams_chunks() {
        use crate::observer::TimingObserver;
        let dir = tmp_store("binary-stream");
        let mut producer = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .store_format(StoreFormat::Binary)
            .build()
            .expect("smoke builds");
        let report = producer.run();
        producer.save_artifacts(&dir).expect("save binary");

        let observer = Arc::new(TimingObserver::new());
        let mut consumer = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .observer(observer.clone())
            .artifacts(dir.clone())
            .build()
            .expect("smoke builds");
        let reloaded = consumer.run();
        assert_eq!(
            report.to_json(),
            reloaded.to_json(),
            "streamed binary chunks must reproduce the report byte-for-byte"
        );
        for kind in [StageKind::Crowd, StageKind::Crawl, StageKind::Personas] {
            assert_eq!(observer.starts(kind), 0, "{kind} must come from disk");
            assert_eq!(observer.loads(kind), 1, "{kind} load must be observed");
        }
        let chunks: u64 = observer
            .timings()
            .iter()
            .flat_map(|t| t.counters.iter())
            .filter(|(name, _)| name == "frames_chunks_loaded")
            .map(|(_, value)| *value)
            .sum();
        assert!(
            chunks > 0,
            "analysis must stream domain chunks instead of whole payloads"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_store_forces_recompute() {
        use crate::observer::TimingObserver;
        let dir = tmp_store("stale");
        let mut producer = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .build()
            .expect("smoke builds");
        producer.crowd();
        producer.save_artifacts(&dir).expect("save");

        let observer = Arc::new(TimingObserver::new());
        let mut consumer = Experiment::builder()
            .scenario("smoke")
            .seed(8) // different seed → different fingerprint
            .observer(observer.clone())
            .artifacts(dir.clone())
            .build()
            .expect("smoke builds");
        consumer.crowd();
        assert_eq!(observer.loads(StageKind::Crowd), 0, "stale must not load");
        assert_eq!(observer.starts(StageKind::Crowd), 1, "stale must recompute");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_refuses_to_clobber_another_plans_store() {
        let dir = tmp_store("clobber");
        let mut seed7 = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .build()
            .expect("smoke builds");
        seed7.crowd();
        seed7.save_artifacts(&dir).expect("save");

        let mut seed8 = Experiment::builder()
            .scenario("smoke")
            .seed(8)
            .build()
            .expect("smoke builds");
        seed8.crowd();
        assert!(matches!(
            seed8.save_artifacts(&dir),
            Err(crate::store::StoreError::PlanMismatch { .. })
        ));
        // The seed-7 artifacts must have survived the refusal.
        let mut check = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .build()
            .expect("smoke builds");
        assert!(
            check
                .load_artifacts(&dir)
                .expect("store intact")
                .loaded
                .len()
                == 1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_analysis_skips_when_already_fresh() {
        let dir = tmp_store("analysis-fresh");
        let mut engine = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .build()
            .expect("smoke builds");
        let analysis = engine.analyze();
        engine.save_artifacts(&dir).expect("save");
        let first = engine
            .save_analysis(&dir, &analysis)
            .expect("save analysis");
        let written = std::fs::read(dir.join("analysis.json")).expect("file exists");
        // A second save under the same fingerprint must not rewrite.
        std::fs::write(dir.join("analysis.json"), b"sentinel").expect("scribble");
        let second = engine.save_analysis(&dir, &analysis).expect("fresh skip");
        assert_eq!(first, second, "reported size must be the stored size");
        assert_eq!(
            std::fs::read(dir.join("analysis.json")).expect("file exists"),
            b"sentinel",
            "a fresh entry must be left untouched"
        );
        let _ = written;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_artifacts_reports_per_stage_outcomes() {
        let dir = tmp_store("outcomes");
        let mut producer = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .build()
            .expect("smoke builds");
        producer.crowd();
        producer.save_artifacts(&dir).expect("save crowd only");

        let mut same_plan = Experiment::builder()
            .scenario("smoke")
            .seed(7)
            .build()
            .expect("smoke builds");
        let summary = same_plan.load_artifacts(&dir).expect("store opens");
        assert_eq!(summary.loaded, vec![StageKind::Crowd]);
        assert_eq!(summary.missing, vec![StageKind::Crawl, StageKind::Personas]);
        assert!(!summary.complete());

        let mut other_plan = Experiment::builder()
            .scenario("smoke")
            .seed(9)
            .build()
            .expect("smoke builds");
        let summary = other_plan.load_artifacts(&dir).expect("store opens");
        assert_eq!(summary.stale, vec![StageKind::Crowd]);
        assert!(summary.loaded.is_empty());

        assert!(matches!(
            other_plan.load_artifacts(&tmp_store("not-a-store")),
            Err(crate::store::StoreError::NoManifest { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_caches_stage_artifacts() {
        let mut engine = Experiment::builder()
            .scenario("paper")
            .profile(Profile::Smoke)
            .build()
            .unwrap();
        let first_len = engine.crowd().raw.len();
        // Second call must hand back the same artifact without rerunning.
        assert_eq!(engine.crowd().raw.len(), first_len);
    }
}
