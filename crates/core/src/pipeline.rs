//! The four-stage experiment pipeline.

use crate::config::ExperimentConfig;
use crate::report::{Fig8Grid, Report};
use crate::world::World;
use pd_analysis::{crawl, crowd as crowd_figs, location, login, strategy, summary, thirdparty};
use pd_crawler::{select_targets, Crawler};
use pd_currency::Locale;
use pd_extract::HighlightExtractor;
use pd_net::clock::SimTime;
use pd_net::geo::{Country, Location};
use pd_sheriff::cleaning::{clean, CleaningReport};
use pd_sheriff::personas::{login_experiment, persona_experiment};
use pd_sheriff::MeasurementStore;
use pd_web::template::price_selector;
use pd_web::Request;

/// The experiment driver.
#[derive(Debug)]
pub struct Experiment {
    config: ExperimentConfig,
    world: World,
}

impl Experiment {
    /// Builds the world for `config`.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        let world = World::build(&config);
        Experiment { config, world }
    }

    /// The world (read access for examples and diagnostics).
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the full pipeline and produces the report.
    #[must_use]
    pub fn run(config: ExperimentConfig) -> Report {
        let mut exp = Experiment::new(config);
        let (crowd_raw, crowd_clean, cleaning) = exp.run_crowd_phase();
        let (crawl_store, _stats) = exp.run_crawl_phase();
        exp.analyze(&crowd_raw, &crowd_clean, cleaning, &crawl_store)
    }

    /// Stage 2: the crowd campaign plus cleaning. Returns (raw, cleaned,
    /// report).
    #[must_use]
    pub fn run_crowd_phase(&mut self) -> (MeasurementStore, MeasurementStore, CleaningReport) {
        let raw = self
            .world
            .crowd
            .run_campaign(&self.world.web, &self.world.sheriff);
        let web = &self.world.web;
        let crowd = &self.world.crowd;
        let fx = web.fx();
        let (cleaned, mut report) = clean(&raw, fx, |m| {
            // Refetch the URI as the user's own browser would and
            // re-extract with the retailer's template highlight.
            let user = crowd.users().get(m.user.index())?;
            let server = web.server_by_domain(&m.domain)?;
            let req = Request::get(
                &m.domain,
                &format!("/product/{}", m.product_slug),
                user_addr(user),
                m.time,
            );
            let resp = web.fetch(&req);
            if resp.status.code() != 200 {
                return None;
            }
            let doc = pd_html::parse(&resp.body);
            let ex = HighlightExtractor::from_highlight(
                &doc,
                &price_selector(server.spec().template_style),
            )?;
            ex.extract(&doc, Some(Locale::of_country(user.location.country)))
                .ok()
                .map(|e| e.price)
        });
        // The paper's manual tax check, automated: drop domains whose
        // variation is explained by inlined taxes (pre-tax checkout
        // items agree across locations while displayed prices differ).
        let tax_explained: std::collections::HashSet<String> = cleaned
            .domains()
            .into_iter()
            .filter(|d| self.is_tax_explained(d))
            .collect();
        let mut final_store = MeasurementStore::new();
        for m in cleaned.records() {
            if tax_explained.contains(&m.domain) {
                report.dropped_tax_explained += 1;
                report.kept -= 1;
            } else {
                final_store.push(m.clone());
            }
        }
        (raw, final_store, report)
    }

    /// The paper's stated future work, implemented: attribute a
    /// retailer's price variation to specific request factors (country,
    /// city, session, day, login) by controlled probing. Returns `None`
    /// for unknown domains.
    #[must_use]
    pub fn attribute_factors(
        &self,
        domain: &str,
        products: usize,
    ) -> Option<pd_analysis::Attribution> {
        let vp = |label: &str| {
            let v = self.world.vantage_by_label(label)?;
            Some((v.addr, v.location.clone()))
        };
        let probes = pd_analysis::ProbeSet {
            us_a: vp("USA - Boston")?,
            us_b: vp("USA - Chicago")?,
            us_c: vp("USA - New York")?,
            foreign: vp("Finland - Tampere")?,
        };
        let base_day = self.config.crawl.start_day + self.config.crawl.days + 2;
        pd_analysis::attribute(&self.world.web, &probes, domain, products, base_day)
    }

    /// The automated version of the paper's manual tax/shipping check:
    /// fetch the same product's *checkout* from two countries with the
    /// same session; if the pre-tax item lines agree (within the exchange
    /// band) while the displayed product prices genuinely differ, the
    /// variation is tax inlining, not discrimination.
    #[must_use]
    pub fn is_tax_explained(&self, domain: &str) -> bool {
        let web = &self.world.web;
        let fx = web.fx();
        let Some(server) = web.server_by_domain(domain) else {
            return false;
        };
        let Some(product) = server.catalog().iter().next() else {
            return false;
        };
        let style = server.spec().template_style;
        let probe_a = self.world.vantage_by_label("USA - Boston");
        let probe_b = self.world.vantage_by_label("Germany - Berlin");
        let (Some(a), Some(b)) = (probe_a, probe_b) else {
            return false;
        };
        let time =
            SimTime::from_millis(self.config.crowd.window_days * 24 * 3_600_000 + 9 * 3_600_000);
        let day = (time.day_index() as usize).min(fx.days().saturating_sub(1));

        let page_price = |addr, country| {
            let req = Request::get(domain, &format!("/product/{}", product.slug), addr, time)
                .with_cookie("sid", "424242");
            let resp = web.fetch(&req);
            if resp.status.code() != 200 {
                return None;
            }
            let doc = pd_html::parse(&resp.body);
            let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style))?;
            ex.extract(&doc, Some(Locale::of_country(country)))
                .ok()
                .map(|e| e.price)
        };
        let item_price = |addr, country| {
            let req = Request::get(domain, &format!("/checkout/{}", product.slug), addr, time)
                .with_cookie("sid", "424242");
            let resp = web.fetch(&req);
            if resp.status.code() != 200 {
                return None;
            }
            let doc = pd_html::parse(&resp.body);
            let cells = pd_html::Selector::parse("td.line-amount")
                .expect("static selector")
                .query_all(&doc);
            let first = cells.first()?;
            Locale::of_country(country)
                .parse(doc.text_content(*first).trim())
                .ok()
        };

        let (Some(pa), Some(pb)) = (
            page_price(a.addr, a.location.country),
            page_price(b.addr, b.location.country),
        ) else {
            return false;
        };
        let (Some(ia), Some(ib)) = (
            item_price(a.addr, a.location.country),
            item_price(b.addr, b.location.country),
        ) else {
            return false;
        };
        let page_differs = pd_currency::band_filter(fx, &[pa, pb], day)
            .map(|v| v.genuine)
            .unwrap_or(false);
        let item_differs = pd_currency::band_filter(fx, &[ia, ib], day)
            .map(|v| v.genuine)
            .unwrap_or(false);
        page_differs && !item_differs
    }

    /// Stage 3: the systematic crawl of the paper's 21 retailers.
    #[must_use]
    pub fn run_crawl_phase(
        &self,
    ) -> (MeasurementStore, Vec<pd_crawler::crawl::RetailerCrawlStats>) {
        let crawler = Crawler::new(self.config.seed, self.config.crawl.clone());
        let targets = self.world.paper_crawl_targets();
        crawler.crawl(&self.world.web, &self.world.sheriff, &targets)
    }

    /// Data-driven variant of target selection (used by the
    /// `crawl_retailers` example and the crowd-value ablation): rank
    /// domains by confirmed crowd variation instead of taking the
    /// paper's list.
    #[must_use]
    pub fn targets_from_crowd(
        &self,
        cleaned: &MeasurementStore,
        min_confirmed: usize,
    ) -> Vec<String> {
        select_targets(cleaned, self.world.web.fx(), min_confirmed)
            .into_iter()
            .map(|t| t.domain)
            .collect()
    }

    /// Stage 4: every figure and table.
    #[must_use]
    pub fn analyze(
        &self,
        crowd_raw: &MeasurementStore,
        crowd_clean: &MeasurementStore,
        cleaning: CleaningReport,
        crawl_store: &MeasurementStore,
    ) -> Report {
        let fx = self.world.web.fx();
        let crowd_frame = pd_analysis::CheckFrame::build(crowd_clean, fx);
        let crawl_frame = pd_analysis::CheckFrame::build(crawl_store, fx);
        let labels = self.world.vantage_labels();

        // Fig. 1 + Fig. 2 (crowd view).
        let fig1 = crowd_figs::fig1_ranking(&crowd_frame, 27);
        let fig1_domains: Vec<String> = fig1.iter().map(|b| b.domain.clone()).collect();
        let fig2 = crowd_figs::fig2_ratio_boxes(&crowd_frame, &fig1_domains);

        // Figs. 3–5 (crawl view).
        let fig3 = crawl::fig3_extent(&crawl_frame);
        let fig4 = crawl::fig4_magnitude(&crawl_frame);
        let (fig5_points, fig5_envelope) = crawl::fig5_scatter(&crawl_frame);

        // Fig. 6: digitalrev (multiplicative) and energie (additive), at
        // the paper's three locations: New York, UK, Finland.
        let fig6_locs: Vec<_> = ["USA - New York", "UK - London", "Finland - Tampere"]
            .iter()
            .filter_map(|l| self.world.vantage_by_label(l).map(|vp| (vp.id, vp.label())))
            .collect();
        let fig6a = strategy::fig6_curves(&crawl_frame, "www.digitalrev.com", &fig6_locs);
        let fig6b = strategy::fig6_curves(&crawl_frame, "www.energie.it", &fig6_locs);

        // Fig. 7 over the full fleet.
        let fig7 = location::fig7_location_boxes(&crawl_frame, &labels);

        // Fig. 8 grids.
        let grid = |domain: &str, labels: &[&str]| {
            let vps: Vec<_> = labels
                .iter()
                .filter_map(|l| self.world.vantage_by_label(l).map(|vp| (vp.id, vp.label())))
                .collect();
            Fig8Grid {
                domain: domain.to_owned(),
                cells: location::fig8_pairwise(&crawl_frame, domain, &vps),
            }
        };
        let fig8a = grid(
            "www.homedepot.com",
            &[
                "USA - Albany",
                "USA - Boston",
                "USA - Los Angeles",
                "USA - Chicago",
                "USA - Lincoln",
                "USA - New York",
            ],
        );
        let fig8b = grid(
            "www.amazon.com",
            &[
                "Belgium - Liege",
                "Brazil - Sao Paulo",
                "Finland - Tampere",
                "Germany - Berlin",
                "Spain (Linux,FF)",
                "USA - New York",
            ],
        );
        let fig8c = grid(
            "store.killah.com",
            &[
                "Brazil - Sao Paulo",
                "Finland - Tampere",
                "Germany - Berlin",
                "Spain (Linux,FF)",
                "UK - London",
                "USA - New York",
            ],
        );

        // Fig. 9: Finland vs min.
        let finland = self
            .world
            .vantage_by_label("Finland - Tampere")
            .expect("Finland probe exists")
            .id;
        let fig9 = location::fig9_finland(&crawl_frame, finland);

        // Fig. 10 + persona experiment: fixed US location and instant.
        let boston = Location::new(Country::UnitedStates, "Boston");
        let boston_vp = self
            .world
            .vantage_by_label("USA - Boston")
            .expect("Boston probe exists");
        let exp_time = SimTime::from_millis(
            (self.config.crawl.start_day + self.config.crawl.days + 1) * 24 * 3_600_000
                + 12 * 3_600_000,
        );
        let login_exp = login_experiment(
            &self.world.web,
            self.config.seed,
            "www.amazon.com",
            &boston,
            boston_vp.addr,
            exp_time,
            self.config.login_products,
        );
        let fig10 = login::fig10(&login_exp);
        let persona_exp = persona_experiment(
            &self.world.web,
            &[
                "www.amazon.com",
                "www.digitalrev.com",
                "www.hotels.com",
                "www.energie.it",
            ],
            &boston,
            boston_vp.addr,
            exp_time,
            self.config.persona_products,
        );
        let persona = login::persona_summary(&persona_exp);

        // Third-party presence over the crawled set.
        let targets = self.world.paper_crawl_targets();
        let third_party =
            thirdparty::scan_third_parties(&self.world.web, &targets, boston_vp.addr, exp_time);

        let summary = summary::dataset_summary(&self.world.crowd, crowd_raw, crawl_store);

        // Extension: per-retailer factor attribution over the crawled set.
        let attribution: Vec<pd_analysis::Attribution> = targets
            .iter()
            .filter_map(|d| self.attribute_factors(d, 8))
            .collect();

        Report {
            summary,
            cleaning,
            fig1,
            fig2,
            fig3,
            fig4,
            fig5_points,
            fig5_envelope,
            fig6a,
            fig6b,
            fig7,
            fig8a,
            fig8b,
            fig8c,
            fig9,
            fig10,
            persona,
            third_party,
            attribution,
        }
    }
}

/// The crowd user's client address. (Accessor lives here to keep the
/// `CrowdUser` field private in `pd-sheriff`.)
fn user_addr(user: &pd_sheriff::crowd::CrowdUser) -> std::net::Ipv4Addr {
    user.addr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_small_pipeline_runs() {
        let report = Experiment::run(ExperimentConfig::small(1307));
        assert!(report.summary.crowd_requests > 100);
        assert!(report.summary.crawled_retailers == 21);
        assert!(!report.fig1.is_empty());
        assert!(!report.fig3.is_empty());
        assert!(!report.fig5_points.is_empty());
        assert_eq!(report.fig8a.cells.len(), 30, "6×6 grid minus diagonal");
        assert!(report.persona.null_result);
    }

    #[test]
    fn crowd_phase_cleaning_drops_noise() {
        let mut exp = Experiment::new(ExperimentConfig::small(2));
        let (raw, cleaned, report) = exp.run_crowd_phase();
        assert!(cleaned.len() <= raw.len());
        assert_eq!(report.kept, cleaned.len());
        // Default noise rates (7 %) over 150 checks: some drops expected.
        assert!(report.dropped_inconsistent > 0, "{report:?}");
    }

    #[test]
    fn tax_check_catches_the_inliner_confound() {
        let exp = Experiment::new(ExperimentConfig::small(3));
        // Filler #0 inlines tax by construction (the injected confound).
        assert!(exp.is_tax_explained("www.shop-000.example"));
        // Real discriminators are not explained away by taxes.
        assert!(!exp.is_tax_explained("www.digitalrev.com"));
        assert!(!exp.is_tax_explained("www.energie.it"));
        // Unknown domains are trivially not tax-explained.
        assert!(!exp.is_tax_explained("gone.example"));
    }

    #[test]
    fn targets_from_crowd_rank_real_discriminators() {
        let mut exp = Experiment::new(ExperimentConfig::small(3));
        let (_, cleaned, _) = exp.run_crowd_phase();
        let targets = exp.targets_from_crowd(&cleaned, 1);
        assert!(!targets.is_empty());
        // Every selected target must actually be discriminating (no
        // false positives at threshold 1 thanks to the band filter).
        for t in &targets {
            let spec = exp
                .world()
                .web
                .server_by_domain(t)
                .map(|s| s.spec().clone());
            if let Some(spec) = spec {
                assert!(
                    spec.is_discriminating(),
                    "{t} selected but not discriminating"
                );
            }
        }
    }
}
