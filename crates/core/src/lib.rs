//! # pd-core — crowd-assisted search for price discrimination
//!
//! The public pipeline API of the reproduction of Mikians et al.,
//! *"Crowd-assisted Search for Price Discrimination in E-Commerce: First
//! results"* (CoNEXT 2013). The paper's study is a four-stage funnel, and
//! so is this crate:
//!
//! 1. **Build a world** — simulated retailers with ground-truth pricing
//!    strategies, a 14-probe vantage fleet, and a crowd of $heriff users
//!    ([`World::build`]).
//! 2. **Crowd phase** — the crowd checks prices on ~600 domains; the
//!    noisy dataset is cleaned ([`stage::crowd_stage`] →
//!    [`stage::CrowdArtifact`]).
//! 3. **Crawl phase** — the flagged retailers are crawled daily for a
//!    week, ≤100 products each, from every vantage point
//!    ([`stage::crawl_stage`] → [`stage::CrawlArtifact`]).
//! 4. **Analysis** — every figure and table of the paper's evaluation is
//!    recomputed ([`stage::analysis_stage`] → [`report::Report`]).
//!
//! The engine is **scenario-driven and data-driven**: workloads are
//! declarative [`ScenarioSpec`] values (base profile + typed
//! [`ConfigPatch`] overrides + cross-product [`SweepAxis`] sweeps) in a
//! [`ScenarioRegistry`] (`paper`, `smoke`, `desync-ablation`,
//! `no-cleaning`, `vantage-subset`, `seed-sweep`, `locale-sweep`,
//! `crowd-sweep`, `failure-sweep`, `targeted-crawl`), lowered to run
//! plans and built through [`ExperimentBuilder`] into an
//! artifact-caching [`Engine`]. New campaigns are JSON files
//! (`pd run --spec`), not new code.
//! Parallel sections run on the deterministic [`Executor`]: the report
//! is **byte-identical at any thread count**. Progress and perf
//! telemetry flow through the [`RunObserver`] hooks.
//!
//! Artifacts also **persist across processes**: the [`store`] module
//! writes each stage artifact as a versioned, fingerprinted envelope
//! under a directory ([`store::ArtifactStore`]) — pretty JSON or a
//! compact chunked binary format ([`store::StoreFormat`]) that analysis
//! streams domain by domain — and an engine built with
//! [`ExperimentBuilder::artifacts`] checks that store before computing —
//! the paper's "measure once, analyze many ways" methodology, on disk.
//! See `docs/ARCHITECTURE.md` for the full lifecycle.
//!
//! ## Quickstart
//!
//! ```
//! use pd_core::{Experiment, Profile};
//!
//! // Scenario-driven: pick a registered workload, scale and thread count.
//! let mut engine = Experiment::builder()
//!     .scenario("paper")
//!     .profile(Profile::Smoke) // Small/Medium/Paper for real runs
//!     .threads(2)
//!     .build()
//!     .expect("registered scenario");
//! let report = engine.run();
//! assert!(report.summary.crowd_requests > 0);
//! println!("{}", report.render_fig1());
//! ```
//!
//! The monolithic one-call API still works and produces the identical
//! report (guarded by `pipeline::tests::legacy_run_equals_builder_paper_scenario`):
//! `Experiment::run(ExperimentConfig::smoke(1307))`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binfmt;
pub mod config;
pub mod executor;
pub mod frames;
pub mod observer;
pub mod pipeline;
pub mod report;
pub mod scenario;
pub mod spec;
pub mod stage;
pub mod store;
pub mod world;

pub use config::{AnalysisConfig, ExperimentConfig, WorldConfig};
pub use executor::Executor;
pub use frames::{FrameCache, FrameStats, StoreCache};
pub use observer::{
    BufferedObserver, NullObserver, RunObserver, StageKind, StageTiming, TimingObserver,
};
pub use pipeline::{
    BuildError, Engine, Experiment, ExperimentBuilder, LoadSummary, SaveSummary, SweepArmRun,
};
pub use report::{reports_to_json, Report};
pub use scenario::{suggest_name, Profile, RunPlan, ScenarioParams, ScenarioRegistry, ScenarioRun};
pub use spec::{
    find_spec_file, load_spec, spec_names_on_path, spec_search_dirs, ConfigPatch, ScenarioSpec,
    SpecError, SweepAxis, SPEC_PATH_ENV,
};
pub use stage::{AnalysisArtifact, CrawlArtifact, CrowdArtifact, PersonaArtifact};
pub use store::{
    ArtifactStore, ChunkedPayload, Fingerprint, Provenance, StoreError, StoreFormat,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use world::World;

// Re-export the component crates so downstream users need one dependency.
pub use pd_analysis as analysis;
pub use pd_crawler as crawler;
pub use pd_currency as currency;
pub use pd_extract as extract;
pub use pd_html as html;
pub use pd_net as net;
pub use pd_pricing as pricing;
pub use pd_sheriff as sheriff;
pub use pd_util as util;
pub use pd_web as web;
