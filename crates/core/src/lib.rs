//! # pd-core — crowd-assisted search for price discrimination
//!
//! The public pipeline API of the reproduction of Mikians et al.,
//! *"Crowd-assisted Search for Price Discrimination in E-Commerce: First
//! results"* (CoNEXT 2013). The paper's study is a four-stage funnel, and
//! so is this crate:
//!
//! 1. **Build a world** — simulated retailers with ground-truth pricing
//!    strategies, a 14-probe vantage fleet, and a crowd of $heriff users
//!    ([`World::build`]).
//! 2. **Crowd phase** — the crowd checks prices on ~600 domains; the
//!    noisy dataset is cleaned ([`Experiment::run_crowd_phase`]).
//! 3. **Crawl phase** — the flagged retailers are crawled daily for a
//!    week, ≤100 products each, from every vantage point
//!    ([`Experiment::run_crawl_phase`]).
//! 4. **Analysis** — every figure and table of the paper's evaluation is
//!    recomputed ([`Experiment::analyze`], producing a [`report::Report`]).
//!
//! ## Quickstart
//!
//! ```
//! use pd_core::{Experiment, ExperimentConfig};
//!
//! // A scaled-down experiment (the default config reproduces the paper's
//! // full scale: 1500 crowd checks, 21 retailers × ~100 products × 7 days).
//! let report = Experiment::run(ExperimentConfig::small(42));
//! assert!(report.summary.crowd_requests > 0);
//! println!("{}", report.render_fig1());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod pipeline;
pub mod report;
pub mod world;

pub use config::ExperimentConfig;
pub use pipeline::Experiment;
pub use report::Report;
pub use world::World;

// Re-export the component crates so downstream users need one dependency.
pub use pd_analysis as analysis;
pub use pd_crawler as crawler;
pub use pd_currency as currency;
pub use pd_extract as extract;
pub use pd_html as html;
pub use pd_net as net;
pub use pd_pricing as pricing;
pub use pd_sheriff as sheriff;
pub use pd_util as util;
pub use pd_web as web;
