//! The deterministic parallel scheduler.
//!
//! Every parallel section of the engine is an *indexed map*: `n`
//! independent tasks, each a pure function of its index and of shared
//! immutable state (the [`crate::World`] has no interior mutability, so
//! `&World` is freely shareable across threads). Worker threads pull
//! indices from an atomic counter, compute results tagged with their
//! index, and the coordinator merges them **in index order** — so the
//! output is byte-identical to a sequential run regardless of thread
//! count or OS scheduling.
//!
//! Coarse task granularity (one crowd check, one retailer crawl, one
//! attribution probe) keeps coordination overhead negligible without any
//! work-stealing machinery.
//!
//! ```
//! use pd_core::Executor;
//!
//! // Four workers, but the output order is the index order — always.
//! let squares = Executor::new(4).map_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! assert_eq!(squares, Executor::serial().map_indexed(8, |i| i * i));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic fork-join executor over indexed tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    /// Defaults to a serial executor (one thread).
    fn default() -> Self {
        Executor::serial()
    }
}

impl Executor {
    /// An executor with `threads` worker threads. `0` means "use the
    /// machine's available parallelism".
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        Executor { threads }
    }

    /// The serial executor: runs every task inline on the caller thread.
    #[must_use]
    pub const fn serial() -> Self {
        Executor { threads: 1 }
    }

    /// Number of worker threads this executor fans across.
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// Splits this executor's thread budget across `arms` concurrent
    /// sub-runs: returns `(arm-level executor, per-arm executor)` such
    /// that `arm_workers × per-arm workers ≤ threads` (never
    /// oversubscribing the budget) and no factor is zero. With more
    /// budget than arms the remainder goes to intra-arm parallelism;
    /// with fewer, arms queue on the arm-level executor.
    ///
    /// ```
    /// use pd_core::Executor;
    ///
    /// let (arms, intra) = Executor::new(8).split(3);
    /// assert_eq!((arms.threads(), intra.threads()), (3, 2)); // 3×2 ≤ 8
    /// let (arms, intra) = Executor::new(1).split(3);
    /// assert_eq!((arms.threads(), intra.threads()), (1, 1)); // serial
    /// ```
    #[must_use]
    pub const fn split(&self, arms: usize) -> (Executor, Executor) {
        let arms = if arms == 0 { 1 } else { arms };
        let arm_workers = if self.threads < arms {
            self.threads
        } else {
            arms
        };
        let arm_workers = if arm_workers == 0 { 1 } else { arm_workers };
        let intra = self.threads / arm_workers;
        let intra = if intra == 0 { 1 } else { intra };
        (
            Executor {
                threads: arm_workers,
            },
            Executor { threads: intra },
        )
    }

    /// Maps `f` over `0..n` and returns the results in index order.
    ///
    /// `f` must be pure with respect to the index (it may read shared
    /// state freely); under that contract the result is identical for
    /// every thread count, including the serial executor.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker task.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => tagged.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        // Index-ordered merge: scheduling decided who computed what, the
        // index decides where it lands.
        tagged.sort_unstable_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_resolves_to_hardware() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::new(3).threads(), 3);
        assert_eq!(Executor::serial().threads(), 1);
    }

    #[test]
    fn map_preserves_index_order_at_any_thread_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 4, 8, 32] {
            let got = Executor::new(threads).map_indexed(257, |i| i * i);
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let exec = Executor::new(4);
        assert_eq!(exec.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.map_indexed(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn uneven_task_costs_still_merge_in_order() {
        // Make early indices slow so late indices finish first.
        let exec = Executor::new(4);
        let got = exec.map_indexed(16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn split_never_oversubscribes_the_budget() {
        for total in 1..=16 {
            for arms in 0..=8 {
                let (arm_exec, intra) = Executor::new(total).split(arms);
                assert!(
                    arm_exec.threads() * intra.threads() <= total.max(1),
                    "split({total}, {arms}) = {} × {}",
                    arm_exec.threads(),
                    intra.threads()
                );
                assert!(arm_exec.threads() >= 1);
                assert!(intra.threads() >= 1);
                assert!(arm_exec.threads() <= arms.max(1), "no idle arm workers");
            }
        }
        // The documented shape: budget beyond the arm count flows to
        // intra-arm workers.
        assert_eq!(Executor::new(8).split(2).1.threads(), 4);
        assert_eq!(Executor::new(4).split(3).0.threads(), 3);
        assert_eq!(Executor::new(4).split(3).1.threads(), 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(2).map_indexed(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
