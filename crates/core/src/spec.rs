//! Declarative scenario specs: experiments as data.
//!
//! A [`ScenarioSpec`] is a serde-serializable *value* describing a
//! measurement campaign: a base [`Profile`], a typed [`ConfigPatch`] of
//! overrides, and a list of [`SweepAxis`] values whose arms expand into
//! the cross product of labeled runs. Specs **lower** to the same
//! [`RunPlan`]s/[`ScenarioRun`]s the engine has always executed, so a
//! spec run is byte-identical to the equivalent hand-written scenario —
//! but a new campaign is a JSON file (`pd run --spec FILE.json`) or a
//! few struct fields, not a new trait impl and a recompile.
//!
//! Every built-in scenario of the [`crate::ScenarioRegistry`] is itself
//! a spec ([`builtin_specs`]); `pd scenarios show NAME --json` dumps any
//! of them as an editable starting point, and the artifact store records
//! the exact producing spec in its manifest (see [`crate::store`]).
//!
//! ```
//! use pd_core::spec::{ConfigPatch, ScenarioSpec, SweepAxis};
//! use pd_core::{Profile, ScenarioParams};
//!
//! // A two-arm failure-rate sweep, declared as data.
//! let spec = ScenarioSpec {
//!     name: "my-failure-sweep".to_owned(),
//!     describe: "clean vs 10% transient failures".to_owned(),
//!     base: None, // run at whatever profile the caller requests
//!     patch: ConfigPatch::default(),
//!     sweep: vec![SweepAxis::FailureRates {
//!         arms: vec![
//!             pd_core::spec::FailureRateArm { label: "clean".into(), rate: 0.0 },
//!             pd_core::spec::FailureRateArm { label: "fail-10pct".into(), rate: 0.1 },
//!         ],
//!     }],
//! };
//! let params = ScenarioParams { seed: 7, profile: Profile::Smoke };
//! let arms = spec.lower(&params).expect("valid spec").into_variants();
//! assert_eq!(arms.len(), 2);
//! assert_eq!(arms[1].0, "fail-10pct");
//! assert_eq!(arms[1].1.config.world.failure_rate, 0.1);
//!
//! // Specs round-trip through JSON with an identical fingerprint.
//! let json = spec.to_json_pretty();
//! let back = ScenarioSpec::from_json(&json).expect("parses");
//! assert_eq!(back.fingerprint(), spec.fingerprint());
//! ```

use crate::scenario::{
    suggest_name, Profile, RunPlan, ScenarioParams, ScenarioRun, DESYNC_SKEW, VANTAGE_SUBSET_LABELS,
};
use pd_net::clock::SimDuration;
use pd_net::geo::Country;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// A declarative, serializable scenario: base profile, typed overrides
/// and sweep axes. See the [module docs](self) for the model and a
/// worked example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Registry key (kebab-case).
    pub name: String,
    /// One-line description for `pd --help` and the README table.
    pub describe: String,
    /// Pinned workload profile (`"smoke"`/`"small"`/`"medium"`/`"paper"`).
    /// `None` runs at whatever profile the caller requests — most specs
    /// want `None` so `--profile` keeps working.
    pub base: Option<String>,
    /// Overrides applied on top of the base profile's configuration
    /// (and the plan's engine knobs) before any sweep axis expands.
    pub patch: ConfigPatch,
    /// Sweep axes; the arms of consecutive axes combine as a cross
    /// product. Empty = a single run.
    pub sweep: Vec<SweepAxis>,
}

/// Typed overrides a spec applies to a [`RunPlan`]. Every field is
/// optional; `None` keeps the base profile's value, so serialized specs
/// only mention what they change. The same struct backs the CLI's
/// `--set key=value` flags ([`ConfigPatch::set`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigPatch {
    /// Root seed (wins over the requested seed).
    pub seed: Option<u64>,
    /// Crowd size ($heriff users).
    pub users: Option<usize>,
    /// Crowd checks issued over the window.
    pub checks: Option<usize>,
    /// Crowd collection window, days.
    pub window_days: Option<u64>,
    /// Bias the crowd population toward one country (the locale sweeps).
    pub bias_country: Option<Country>,
    /// Products crawled per retailer.
    pub products_per_retailer: Option<usize>,
    /// Consecutive crawl days.
    pub crawl_days: Option<u64>,
    /// First crawl day (simulation day index).
    pub crawl_start_day: Option<u64>,
    /// Long-tail domains beyond the 30 named retailers.
    pub filler_domains: Option<usize>,
    /// Transient fetch-failure probability in `[0, 1]`
    /// ([`crate::config::WorldConfig::failure_rate`]).
    pub failure_rate: Option<f64>,
    /// Products in the Fig. 10 login experiment.
    pub login_products: Option<usize>,
    /// Products per retailer in the persona experiment.
    pub persona_products: Option<usize>,
    /// Domains ranked by Fig. 1 (analysis-only knob).
    pub fig1_domains: Option<usize>,
    /// Products probed per retailer by the attribution extension
    /// (analysis-only knob).
    pub attribution_products: Option<usize>,
    /// Per-vantage fan-out skew, minutes (the desync ablation).
    pub desync_mins: Option<u64>,
    /// Disable the Sec. 3.2 cleaning pass.
    pub skip_cleaning: Option<bool>,
    /// Restrict the vantage fleet to these Fig. 7 labels.
    pub vantage_labels: Option<Vec<String>>,
    /// Pick crawl targets from confirmed crowd variation (the value is
    /// the minimum confirmed-variation count) instead of the paper's
    /// fixed 21-retailer list.
    pub targets_from_crowd: Option<usize>,
}

/// One sweep dimension of a [`ScenarioSpec`]. Each axis expands into
/// labeled arms; multiple axes cross-product (labels join with `/`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// `count` consecutive seeds starting at the run's base seed, each
    /// arm labeled `seed-<seed>` (the classic conclusion-stability sweep).
    Seeds {
        /// How many consecutive seeds to run (≥ 1).
        count: u64,
    },
    /// Crowd population biased toward each arm's country.
    Locales {
        /// The labeled countries.
        arms: Vec<LocaleArm>,
    },
    /// Crowd budget scaled per arm (users *and* checks, as a percentage
    /// of the base profile's scale — profile-portable by construction).
    CrowdSizes {
        /// The labeled scale factors.
        arms: Vec<CrowdSizeArm>,
    },
    /// Transient fetch-failure rate per arm.
    FailureRates {
        /// The labeled rates.
        arms: Vec<FailureRateArm>,
    },
    /// Fan-out desynchronization skew per arm, minutes.
    DesyncMins {
        /// The labeled skews.
        arms: Vec<DesyncArm>,
    },
    /// Vantage fleet per arm.
    VantageSubsets {
        /// The labeled fleets.
        arms: Vec<VantageArm>,
    },
}

/// One arm of [`SweepAxis::Locales`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocaleArm {
    /// Arm label.
    pub label: String,
    /// The country whose crowd weight is boosted.
    pub country: Country,
}

/// One arm of [`SweepAxis::CrowdSizes`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdSizeArm {
    /// Arm label.
    pub label: String,
    /// Percentage of the base profile's crowd scale (users and checks),
    /// `100` = unchanged. Results are clamped to at least 1.
    pub scale_pct: u64,
}

/// One arm of [`SweepAxis::FailureRates`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRateArm {
    /// Arm label.
    pub label: String,
    /// Transient fetch-failure probability in `[0, 1]`.
    pub rate: f64,
}

/// One arm of [`SweepAxis::DesyncMins`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesyncArm {
    /// Arm label.
    pub label: String,
    /// Per-vantage start skew, minutes (0 = the paper's synchronized
    /// fan-out).
    pub mins: u64,
}

/// One arm of [`SweepAxis::VantageSubsets`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantageArm {
    /// Arm label.
    pub label: String,
    /// The Fig. 7 labels of the fleet this arm runs on.
    pub labels: Vec<String>,
}

/// Why a spec failed validation (and therefore cannot lower).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec's `name` is empty.
    EmptyName,
    /// The pinned `base` profile is not a known profile name.
    UnknownProfile(String),
    /// A sweep axis has no arms (or `Seeds { count: 0 }`).
    EmptyAxis(&'static str),
    /// An arm label is empty, or repeats within its axis.
    BadLabel {
        /// The axis the label belongs to.
        axis: &'static str,
        /// The offending label (empty string = missing).
        label: String,
    },
    /// A failure rate is outside `[0, 1]`.
    RateOutOfRange(f64),
    /// A vantage-subset arm lists no probes.
    EmptyVantageSubset(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyName => f.write_str("spec has an empty name"),
            SpecError::UnknownProfile(p) => write!(
                f,
                "unknown base profile {p:?} (expected smoke, small, medium or paper)"
            ),
            SpecError::EmptyAxis(axis) => write!(f, "sweep axis {axis} has no arms"),
            SpecError::BadLabel { axis, label } if label.is_empty() => {
                write!(f, "sweep axis {axis} has an arm with an empty label")
            }
            SpecError::BadLabel { axis, label } => {
                write!(f, "sweep axis {axis} repeats the arm label {label:?}")
            }
            SpecError::RateOutOfRange(rate) => {
                write!(f, "failure rate {rate} is outside [0, 1]")
            }
            SpecError::EmptyVantageSubset(label) => {
                write!(f, "vantage-subset arm {label:?} lists no probes")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl ConfigPatch {
    /// Applies the patch to a plan: config fields first, then the
    /// engine knobs. `None` fields leave the plan untouched.
    pub fn apply(&self, plan: &mut RunPlan) {
        if let Some(seed) = self.seed {
            plan.config.seed = pd_util::Seed::new(seed);
        }
        if let Some(users) = self.users {
            plan.config.crowd.users = users;
        }
        if let Some(checks) = self.checks {
            plan.config.crowd.checks = checks;
        }
        if let Some(days) = self.window_days {
            plan.config.crowd.window_days = days;
        }
        if let Some(country) = self.bias_country {
            plan.config.crowd.bias_country = Some(country);
        }
        if let Some(n) = self.products_per_retailer {
            plan.config.crawl.products_per_retailer = n;
        }
        if let Some(days) = self.crawl_days {
            plan.config.crawl.days = days;
        }
        if let Some(day) = self.crawl_start_day {
            plan.config.crawl.start_day = day;
        }
        if let Some(n) = self.filler_domains {
            plan.config.filler_domains = n;
        }
        if let Some(rate) = self.failure_rate {
            plan.config.world.failure_rate = rate;
        }
        if let Some(n) = self.login_products {
            plan.config.login_products = n;
        }
        if let Some(n) = self.persona_products {
            plan.config.persona_products = n;
        }
        if let Some(n) = self.fig1_domains {
            plan.config.analysis.fig1_domains = n;
        }
        if let Some(n) = self.attribution_products {
            plan.config.analysis.attribution_products = n;
        }
        if let Some(mins) = self.desync_mins {
            plan.desync = SimDuration::from_mins(mins);
        }
        if let Some(skip) = self.skip_cleaning {
            plan.cleaning = !skip;
        }
        if let Some(labels) = &self.vantage_labels {
            plan.vantage_labels = Some(labels.clone());
        }
        if let Some(min) = self.targets_from_crowd {
            plan.targets_from_crowd = Some(min);
        }
    }

    /// Merges `other` into `self`; `other`'s `Some` fields win (the
    /// CLI layers `--set` overrides onto a spec's own patch this way).
    pub fn merge(&mut self, other: &ConfigPatch) {
        macro_rules! take {
            ($($field:ident),* $(,)?) => {
                $(if other.$field.is_some() {
                    self.$field = other.$field.clone();
                })*
            };
        }
        take!(
            seed,
            users,
            checks,
            window_days,
            bias_country,
            products_per_retailer,
            crawl_days,
            crawl_start_day,
            filler_domains,
            failure_rate,
            login_products,
            persona_products,
            fig1_domains,
            attribution_products,
            desync_mins,
            skip_cleaning,
            vantage_labels,
            targets_from_crowd,
        );
    }

    /// Sets one field from a `key=value` pair (the CLI's `--set`). Keys
    /// mirror the config structure (`crowd.users`, `crawl.days`,
    /// `world.failure_rate`, `analysis.fig1_domains`, …) with the plan
    /// knobs flat (`desync_mins`, `skip_cleaning`, `vantage_labels`,
    /// `targets_from_crowd`).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the unknown key or the value that
    /// failed to parse.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("--set {key}: bad value {value:?}"))
        }
        match key {
            "seed" => self.seed = Some(num(key, value)?),
            "crowd.users" => self.users = Some(num(key, value)?),
            "crowd.checks" => self.checks = Some(num(key, value)?),
            "crowd.window_days" => self.window_days = Some(num(key, value)?),
            "crowd.bias_country" => {
                let country = Country::ALL
                    .iter()
                    .find(|c| c.code().eq_ignore_ascii_case(value))
                    .copied()
                    .ok_or_else(|| {
                        format!("--set {key}: unknown country code {value:?} (use e.g. US, DE, BR)")
                    })?;
                self.bias_country = Some(country);
            }
            "crawl.products_per_retailer" => {
                self.products_per_retailer = Some(num(key, value)?);
            }
            "crawl.days" => self.crawl_days = Some(num(key, value)?),
            "crawl.start_day" => self.crawl_start_day = Some(num(key, value)?),
            "filler_domains" => self.filler_domains = Some(num(key, value)?),
            "world.failure_rate" | "failure_rate" => {
                let rate: f64 = num(key, value)?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--set {key}: rate {rate} outside [0, 1]"));
                }
                self.failure_rate = Some(rate);
            }
            "login_products" => self.login_products = Some(num(key, value)?),
            "persona_products" => self.persona_products = Some(num(key, value)?),
            "analysis.fig1_domains" => self.fig1_domains = Some(num(key, value)?),
            "analysis.attribution_products" => {
                self.attribution_products = Some(num(key, value)?);
            }
            "desync_mins" => self.desync_mins = Some(num(key, value)?),
            "skip_cleaning" => self.skip_cleaning = Some(num(key, value)?),
            "vantage_labels" => {
                let labels: Vec<String> = value
                    .split(',')
                    .map(str::trim)
                    .filter(|l| !l.is_empty())
                    .map(str::to_owned)
                    .collect();
                if labels.is_empty() {
                    return Err(format!("--set {key}: no labels in {value:?}"));
                }
                self.vantage_labels = Some(labels);
            }
            "targets_from_crowd" => self.targets_from_crowd = Some(num(key, value)?),
            _ => return Err(format!("--set: unknown key {key:?}")),
        }
        Ok(())
    }
}

impl SweepAxis {
    /// The `--set` key this axis overwrites in every expanded arm, or
    /// `None` for axes that *derive from* the base plan instead of
    /// replacing it (`Seeds` starts from the base seed, `CrowdSizes`
    /// scales the base users/checks) — overrides compose with those.
    #[must_use]
    pub const fn clobbered_key(&self) -> Option<&'static str> {
        match self {
            SweepAxis::Seeds { .. } | SweepAxis::CrowdSizes { .. } => None,
            SweepAxis::Locales { .. } => Some("crowd.bias_country"),
            SweepAxis::FailureRates { .. } => Some("world.failure_rate"),
            SweepAxis::DesyncMins { .. } => Some("desync_mins"),
            SweepAxis::VantageSubsets { .. } => Some("vantage_labels"),
        }
    }

    /// The axis name used in validation errors.
    const fn axis_name(&self) -> &'static str {
        match self {
            SweepAxis::Seeds { .. } => "Seeds",
            SweepAxis::Locales { .. } => "Locales",
            SweepAxis::CrowdSizes { .. } => "CrowdSizes",
            SweepAxis::FailureRates { .. } => "FailureRates",
            SweepAxis::DesyncMins { .. } => "DesyncMins",
            SweepAxis::VantageSubsets { .. } => "VantageSubsets",
        }
    }

    fn validate(&self) -> Result<(), SpecError> {
        let labels: Vec<&str> = match self {
            SweepAxis::Seeds { count } => {
                if *count == 0 {
                    return Err(SpecError::EmptyAxis(self.axis_name()));
                }
                return Ok(());
            }
            SweepAxis::Locales { arms } => arms.iter().map(|a| a.label.as_str()).collect(),
            SweepAxis::CrowdSizes { arms } => arms.iter().map(|a| a.label.as_str()).collect(),
            SweepAxis::FailureRates { arms } => {
                for arm in arms {
                    if !(0.0..=1.0).contains(&arm.rate) {
                        return Err(SpecError::RateOutOfRange(arm.rate));
                    }
                }
                arms.iter().map(|a| a.label.as_str()).collect()
            }
            SweepAxis::DesyncMins { arms } => arms.iter().map(|a| a.label.as_str()).collect(),
            SweepAxis::VantageSubsets { arms } => {
                for arm in arms {
                    if arm.labels.is_empty() {
                        return Err(SpecError::EmptyVantageSubset(arm.label.clone()));
                    }
                }
                arms.iter().map(|a| a.label.as_str()).collect()
            }
        };
        if labels.is_empty() {
            return Err(SpecError::EmptyAxis(self.axis_name()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for label in labels {
            if label.is_empty() || !seen.insert(label) {
                return Err(SpecError::BadLabel {
                    axis: self.axis_name(),
                    label: label.to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Expands one base plan into this axis's labeled arms.
    fn expand(&self, base: &RunPlan) -> Vec<(String, RunPlan)> {
        match self {
            SweepAxis::Seeds { count } => (0..*count)
                .map(|offset| {
                    let seed = base.config.seed.value() + offset;
                    let mut plan = base.clone();
                    plan.config.seed = pd_util::Seed::new(seed);
                    (format!("seed-{seed}"), plan)
                })
                .collect(),
            SweepAxis::Locales { arms } => arms
                .iter()
                .map(|arm| {
                    let mut plan = base.clone();
                    plan.config.crowd.bias_country = Some(arm.country);
                    (arm.label.clone(), plan)
                })
                .collect(),
            SweepAxis::CrowdSizes { arms } => arms
                .iter()
                .map(|arm| {
                    let mut plan = base.clone();
                    let scale = |n: usize| ((n as u64 * arm.scale_pct) / 100).max(1) as usize;
                    plan.config.crowd.users = scale(plan.config.crowd.users);
                    plan.config.crowd.checks = scale(plan.config.crowd.checks);
                    (arm.label.clone(), plan)
                })
                .collect(),
            SweepAxis::FailureRates { arms } => arms
                .iter()
                .map(|arm| {
                    let mut plan = base.clone();
                    plan.config.world.failure_rate = arm.rate;
                    (arm.label.clone(), plan)
                })
                .collect(),
            SweepAxis::DesyncMins { arms } => arms
                .iter()
                .map(|arm| {
                    let mut plan = base.clone();
                    plan.desync = SimDuration::from_mins(arm.mins);
                    (arm.label.clone(), plan)
                })
                .collect(),
            SweepAxis::VantageSubsets { arms } => arms
                .iter()
                .map(|arm| {
                    let mut plan = base.clone();
                    plan.vantage_labels = Some(arm.labels.clone());
                    (arm.label.clone(), plan)
                })
                .collect(),
        }
    }
}

impl ScenarioSpec {
    /// A single-run spec with no overrides (the `paper` shape).
    #[must_use]
    pub fn single(name: &str, describe: &str) -> Self {
        ScenarioSpec {
            name: name.to_owned(),
            describe: describe.to_owned(),
            base: None,
            patch: ConfigPatch::default(),
            sweep: Vec::new(),
        }
    }

    /// Checks the spec is well-formed: non-empty name, known pinned
    /// profile, every axis non-empty with unique non-empty labels, rates
    /// in range.
    ///
    /// # Errors
    ///
    /// The first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::EmptyName);
        }
        if let Some(base) = &self.base {
            if Profile::parse(base).is_none() {
                return Err(SpecError::UnknownProfile(base.clone()));
            }
        }
        // The patch shares the axis rule: a rate the world would assert
        // on must be a typed error here, never a mid-run panic. The
        // range check also rejects NaN.
        if let Some(rate) = self.patch.failure_rate {
            if !(0.0..=1.0).contains(&rate) {
                return Err(SpecError::RateOutOfRange(rate));
            }
        }
        for axis in &self.sweep {
            axis.validate()?;
        }
        Ok(())
    }

    /// Lowers the spec to labeled [`RunPlan`]s at the given parameters:
    /// base profile (pinned or requested) → patch → sweep-axis cross
    /// product. No axes = a [`ScenarioRun::Single`]; otherwise every
    /// combination of axis arms becomes one labeled sweep arm, labels
    /// joined with `/`.
    ///
    /// # Errors
    ///
    /// [`SpecError`] if the spec fails [`ScenarioSpec::validate`].
    pub fn lower(&self, params: &ScenarioParams) -> Result<ScenarioRun, SpecError> {
        self.validate()?;
        let profile = match &self.base {
            Some(base) => Profile::parse(base).expect("validated above"),
            None => params.profile,
        };
        let seed = self.patch.seed.unwrap_or(params.seed);
        let mut base = RunPlan::new(profile.config(seed));
        self.patch.apply(&mut base);
        if self.sweep.is_empty() {
            return Ok(ScenarioRun::Single(base));
        }
        let mut arms: Vec<(String, RunPlan)> = vec![(String::new(), base)];
        for axis in &self.sweep {
            arms = arms
                .iter()
                .flat_map(|(label, plan)| {
                    axis.expand(plan).into_iter().map(move |(arm_label, plan)| {
                        let label = if label.is_empty() {
                            arm_label
                        } else {
                            format!("{label}/{arm_label}")
                        };
                        (label, plan)
                    })
                })
                .collect();
        }
        Ok(ScenarioRun::Sweep(arms))
    }

    /// Lowers the spec, panicking on an invalid one. Registry builtins
    /// are always valid; prefer [`ScenarioSpec::lower`] for specs from
    /// files or user input.
    ///
    /// # Panics
    ///
    /// If the spec fails [`ScenarioSpec::validate`].
    #[must_use]
    pub fn plan(&self, params: &ScenarioParams) -> ScenarioRun {
        self.lower(params)
            .unwrap_or_else(|e| panic!("invalid spec {:?}: {e}", self.name))
    }

    /// A stable 64-bit digest of the spec's canonical JSON (FNV-1a, the
    /// same construction as the artifact-store fingerprints). Two specs
    /// that serialize identically fingerprint identically — the
    /// round-trip property the spec tests pin down.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("spec serializes");
        crate::store::fnv1a64(json.as_bytes())
    }

    /// The `(--set key, axis name)` pairs where `overrides` sets a field
    /// one of this spec's sweep axes overwrites in every arm — such an
    /// override would silently never run, so the CLI refuses it instead.
    /// Axes that derive from the base plan (`Seeds`, `CrowdSizes`)
    /// compose with overrides and never conflict.
    #[must_use]
    pub fn override_conflicts(&self, overrides: &ConfigPatch) -> Vec<(&'static str, &'static str)> {
        self.sweep
            .iter()
            .filter_map(|axis| {
                let key = axis.clobbered_key()?;
                let set = match key {
                    "crowd.bias_country" => overrides.bias_country.is_some(),
                    "world.failure_rate" => overrides.failure_rate.is_some(),
                    "desync_mins" => overrides.desync_mins.is_some(),
                    "vantage_labels" => overrides.vantage_labels.is_some(),
                    _ => false,
                };
                set.then(|| (key, axis.axis_name()))
            })
            .collect()
    }

    /// Serializes the spec as editable, pretty-printed JSON (what
    /// `pd scenarios show NAME --json` emits).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses a spec from JSON (the `pd run --spec FILE.json` format)
    /// and validates it.
    ///
    /// # Errors
    ///
    /// A human-readable message when the JSON does not parse, does not
    /// deserialize into a spec, or fails validation.
    pub fn from_json(json: &str) -> Result<ScenarioSpec, String> {
        let value: serde::Value =
            serde_json::from_str(json).map_err(|e| format!("spec does not parse: {e}"))?;
        // Every patch field is optional, so a misspelled key would
        // otherwise be silently dropped and the run would quietly use
        // the base value. Spec files fail loudly instead.
        reject_unknown_keys(&value)?;
        let spec: ScenarioSpec =
            serde_json::from_value(value).map_err(|e| format!("spec does not parse: {e}"))?;
        spec.validate()
            .map_err(|e| format!("invalid spec {:?}: {e}", spec.name))?;
        Ok(spec)
    }
}

/// The environment variable holding extra `:`-separated spec
/// directories, searched after `examples/specs/`.
pub const SPEC_PATH_ENV: &str = "PD_SPEC_PATH";

/// Directories a bare spec name resolves against, in search order:
/// `examples/specs/` under the current directory, then every non-empty
/// `:`-separated entry of [`SPEC_PATH_ENV`]. Read at call time, so a
/// long-running service picks up the environment it was launched with.
#[must_use]
pub fn spec_search_dirs() -> Vec<PathBuf> {
    let mut dirs = vec![PathBuf::from("examples/specs")];
    if let Ok(path) = std::env::var(SPEC_PATH_ENV) {
        dirs.extend(
            path.split(':')
                .filter(|entry| !entry.is_empty())
                .map(PathBuf::from),
        );
    }
    dirs
}

/// Every distinct spec name discoverable on the search path: the file
/// stem of each `*.json` in each [`spec_search_dirs`] entry, sorted.
/// Unreadable directories are skipped (most search entries are
/// optional), so this never fails.
#[must_use]
pub fn spec_names_on_path() -> Vec<String> {
    let mut stems = BTreeSet::new();
    for dir in spec_search_dirs() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    stems.insert(stem.to_owned());
                }
            }
        }
    }
    stems.into_iter().collect()
}

/// Resolves a `--spec` argument (or a `POST /runs` spec name) to a file.
///
/// An argument naming an existing file wins unchanged. Otherwise a bare
/// name — no path separator — is tried as `NAME` and `NAME.json` in each
/// [`spec_search_dirs`] entry, in order. The error names the searched
/// directories and suggests the closest discovered spec
/// ([`suggest_name`] over the `*.json` stems).
///
/// # Errors
///
/// A human-readable message when nothing on disk matches.
pub fn find_spec_file(arg: &str) -> Result<PathBuf, String> {
    let direct = Path::new(arg);
    if direct.is_file() {
        return Ok(direct.to_path_buf());
    }
    let bare = !arg.contains('/') && !arg.contains(std::path::MAIN_SEPARATOR);
    let dirs = spec_search_dirs();
    if bare {
        for dir in &dirs {
            for candidate in [dir.join(arg), dir.join(format!("{arg}.json"))] {
                if candidate.is_file() {
                    return Ok(candidate);
                }
            }
        }
    }
    let mut msg = format!("spec {arg:?} not found");
    if bare {
        let searched: Vec<String> = dirs.iter().map(|d| d.display().to_string()).collect();
        msg.push_str(&format!(" (searched {})", searched.join(", ")));
        let names = spec_names_on_path();
        let stem = arg.strip_suffix(".json").unwrap_or(arg);
        if let Some(hint) = suggest_name(stem, names.iter().map(String::as_str)) {
            msg.push_str(&format!("; did you mean {hint:?}?"));
        } else if !names.is_empty() {
            msg.push_str(&format!("; available: {}", names.join(", ")));
        }
    }
    Err(msg)
}

/// [`find_spec_file`] + read + [`ScenarioSpec::from_json`]: the one-call
/// resolver behind `pd run --spec` and the service's by-name submissions.
///
/// # Errors
///
/// The search error, a read failure, or a parse/validation failure —
/// all as human-readable messages naming the offending path.
pub fn load_spec(arg: &str) -> Result<ScenarioSpec, String> {
    let path = find_spec_file(arg)?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading spec {}: {e}", path.display()))?;
    ScenarioSpec::from_json(&text).map_err(|e| format!("spec {}: {e}", path.display()))
}

/// The keys a spec file may use, per object. Deserialization ignores
/// unknown struct fields (they all default to `None`), so
/// [`ScenarioSpec::from_json`] walks the raw JSON first and names any
/// key that would be dropped.
fn reject_unknown_keys(value: &serde::Value) -> Result<(), String> {
    const SPEC_KEYS: &[&str] = &["name", "describe", "base", "patch", "sweep"];
    const PATCH_KEYS: &[&str] = &[
        "seed",
        "users",
        "checks",
        "window_days",
        "bias_country",
        "products_per_retailer",
        "crawl_days",
        "crawl_start_day",
        "filler_domains",
        "failure_rate",
        "login_products",
        "persona_products",
        "fig1_domains",
        "attribution_products",
        "desync_mins",
        "skip_cleaning",
        "vantage_labels",
        "targets_from_crowd",
    ];
    fn check(map: &serde::Map, allowed: &[&str], what: &str) -> Result<(), String> {
        for key in map.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown {what} key {key:?}"));
            }
        }
        Ok(())
    }
    let Some(spec) = value.as_object() else {
        return Err("spec must be a JSON object".to_owned());
    };
    check(spec, SPEC_KEYS, "spec")?;
    if let Some(patch) = spec.get("patch").and_then(serde::Value::as_object) {
        check(patch, PATCH_KEYS, "patch")?;
    }
    let Some(axes) = spec.get("sweep").and_then(serde::Value::as_array) else {
        return Ok(());
    };
    for axis in axes {
        let Some((variant, payload)) = axis.as_single_entry() else {
            // Not the externally tagged shape; deserialization will
            // produce the precise error.
            continue;
        };
        let arm_keys: &[&str] = match variant {
            "Seeds" => {
                if let Some(map) = payload.as_object() {
                    check(map, &["count"], "Seeds axis")?;
                }
                continue;
            }
            "Locales" => &["label", "country"],
            "CrowdSizes" => &["label", "scale_pct"],
            "FailureRates" => &["label", "rate"],
            "DesyncMins" => &["label", "mins"],
            "VantageSubsets" => &["label", "labels"],
            other => return Err(format!("unknown sweep axis {other:?}")),
        };
        if let Some(map) = payload.as_object() {
            check(map, &["arms"], "sweep axis")?;
            if let Some(arms) = map.get("arms").and_then(serde::Value::as_array) {
                for arm in arms {
                    if let Some(map) = arm.as_object() {
                        check(map, arm_keys, &format!("{variant} arm"))?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Every built-in scenario, as a spec. The first seven reproduce the
/// original trait-based registry byte-for-byte; the last three are the
/// ROADMAP additions (crowd-size sweep, failure-rate sweep,
/// crowd-targeted crawl) — now just data.
#[must_use]
pub fn builtin_specs() -> Vec<ScenarioSpec> {
    let mut specs = vec![
        ScenarioSpec::single(
            "paper",
            "the paper's crowd + crawl + persona study at the requested profile",
        ),
        ScenarioSpec {
            base: Some("smoke".to_owned()),
            ..ScenarioSpec::single(
                "smoke",
                "sub-second CI run exercising every stage (profile-independent)",
            )
        },
        ScenarioSpec {
            sweep: vec![SweepAxis::DesyncMins {
                arms: vec![
                    DesyncArm {
                        label: "synchronized".to_owned(),
                        mins: 0,
                    },
                    DesyncArm {
                        label: "desync-25m".to_owned(),
                        mins: DESYNC_SKEW.as_millis() / 60_000,
                    },
                ],
            }],
            ..ScenarioSpec::single(
                "desync-ablation",
                "sweep: synchronized fan-out vs 25-min per-probe skew",
            )
        },
        ScenarioSpec {
            patch: ConfigPatch {
                skip_cleaning: Some(true),
                ..ConfigPatch::default()
            },
            ..ScenarioSpec::single(
                "no-cleaning",
                "paper run with the Sec. 3.2 noise-cleaning pass disabled",
            )
        },
        ScenarioSpec {
            patch: ConfigPatch {
                vantage_labels: Some(
                    VANTAGE_SUBSET_LABELS
                        .iter()
                        .map(|l| (*l).to_owned())
                        .collect(),
                ),
                ..ConfigPatch::default()
            },
            ..ScenarioSpec::single(
                "vantage-subset",
                "paper run on an 8-probe fleet (fan-out cost ablation)",
            )
        },
        ScenarioSpec {
            sweep: vec![SweepAxis::Seeds { count: 3 }],
            ..ScenarioSpec::single(
                "seed-sweep",
                "sweep: three consecutive seeds (are conclusions seed-stable?)",
            )
        },
        ScenarioSpec {
            sweep: vec![SweepAxis::Locales {
                arms: vec![
                    LocaleArm {
                        label: "us-heavy".to_owned(),
                        country: Country::UnitedStates,
                    },
                    LocaleArm {
                        label: "de-heavy".to_owned(),
                        country: Country::Germany,
                    },
                    LocaleArm {
                        label: "br-heavy".to_owned(),
                        country: Country::Brazil,
                    },
                ],
            }],
            ..ScenarioSpec::single(
                "locale-sweep",
                "sweep: crowd population biased US / DE / BR (discovery robustness)",
            )
        },
    ];
    specs.extend(roadmap_specs());
    specs
}

/// The three ROADMAP scenarios that motivated the spec redesign — each
/// one is a handful of data fields where it used to be a trait impl.
fn roadmap_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            sweep: vec![SweepAxis::CrowdSizes {
                arms: vec![
                    CrowdSizeArm {
                        label: "crowd-25pct".to_owned(),
                        scale_pct: 25,
                    },
                    CrowdSizeArm {
                        label: "crowd-50pct".to_owned(),
                        scale_pct: 50,
                    },
                    CrowdSizeArm {
                        label: "crowd-100pct".to_owned(),
                        scale_pct: 100,
                    },
                ],
            }],
            ..ScenarioSpec::single(
                "crowd-sweep",
                "sweep: crowd budget at 25/50/100% of the profile (discovery vs crowd size)",
            )
        },
        ScenarioSpec {
            sweep: vec![SweepAxis::FailureRates {
                arms: vec![
                    FailureRateArm {
                        label: "fail-0".to_owned(),
                        rate: 0.0,
                    },
                    FailureRateArm {
                        label: "fail-5pct".to_owned(),
                        rate: 0.05,
                    },
                    FailureRateArm {
                        label: "fail-20pct".to_owned(),
                        rate: 0.2,
                    },
                ],
            }],
            ..ScenarioSpec::single(
                "failure-sweep",
                "sweep: transient fetch failures at 0/5/20% (retry robustness)",
            )
        },
        ScenarioSpec {
            patch: ConfigPatch {
                targets_from_crowd: Some(1),
                ..ConfigPatch::default()
            },
            ..ScenarioSpec::single(
                "targeted-crawl",
                "crawl targets ranked from confirmed crowd variation, not the paper's list",
            )
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenarioParams {
        ScenarioParams {
            seed: 1307,
            profile: Profile::Smoke,
        }
    }

    #[test]
    fn builtins_validate_and_carry_descriptions() {
        let specs = builtin_specs();
        assert_eq!(specs.len(), 10);
        for spec in &specs {
            spec.validate()
                .unwrap_or_else(|e| panic!("builtin {:?} invalid: {e}", spec.name));
            assert!(!spec.describe.is_empty(), "{} undocumented", spec.name);
        }
    }

    #[test]
    fn patch_applies_config_and_plan_knobs() {
        let patch = ConfigPatch {
            users: Some(10),
            checks: Some(20),
            failure_rate: Some(0.25),
            desync_mins: Some(5),
            skip_cleaning: Some(true),
            targets_from_crowd: Some(2),
            ..ConfigPatch::default()
        };
        let mut plan = RunPlan::new(crate::ExperimentConfig::smoke(1));
        patch.apply(&mut plan);
        assert_eq!(plan.config.crowd.users, 10);
        assert_eq!(plan.config.crowd.checks, 20);
        assert_eq!(plan.config.world.failure_rate, 0.25);
        assert_eq!(plan.desync, SimDuration::from_mins(5));
        assert!(!plan.cleaning);
        assert_eq!(plan.targets_from_crowd, Some(2));
    }

    #[test]
    fn merge_prefers_the_overriding_patch() {
        let mut base = ConfigPatch {
            users: Some(10),
            checks: Some(20),
            ..ConfigPatch::default()
        };
        let over = ConfigPatch {
            users: Some(99),
            failure_rate: Some(0.5),
            ..ConfigPatch::default()
        };
        base.merge(&over);
        assert_eq!(base.users, Some(99), "override wins");
        assert_eq!(base.checks, Some(20), "unset override keeps base");
        assert_eq!(base.failure_rate, Some(0.5));
    }

    #[test]
    fn set_parses_known_keys_and_rejects_unknown() {
        let mut patch = ConfigPatch::default();
        patch.set("crowd.users", "12").expect("users");
        patch.set("failure_rate", "0.1").expect("rate");
        patch.set("crowd.bias_country", "de").expect("country");
        patch.set("skip_cleaning", "true").expect("bool");
        patch
            .set("vantage_labels", "USA - Boston, Finland - Tampere")
            .expect("labels");
        assert_eq!(patch.users, Some(12));
        assert_eq!(patch.bias_country, Some(Country::Germany));
        assert_eq!(patch.skip_cleaning, Some(true));
        assert_eq!(
            patch.vantage_labels.as_deref(),
            Some(&["USA - Boston".to_owned(), "Finland - Tampere".to_owned()][..])
        );
        assert!(patch.set("warp.speed", "9").is_err());
        assert!(patch.set("failure_rate", "1.5").is_err());
        assert!(patch.set("crowd.users", "many").is_err());
        assert!(patch.set("crowd.bias_country", "XX").is_err());
    }

    #[test]
    fn lowering_without_axes_is_a_single_run() {
        let spec = ScenarioSpec::single("solo", "one run");
        let ScenarioRun::Single(plan) = spec.plan(&params()) else {
            panic!("no axes must lower to a single run");
        };
        assert_eq!(plan.config.seed.value(), 1307);
        assert_eq!(plan.config.crowd.checks, 60, "smoke profile requested");
    }

    #[test]
    fn pinned_base_profile_overrides_the_requested_one() {
        let spec = ScenarioSpec {
            base: Some("small".to_owned()),
            ..ScenarioSpec::single("pinned", "always small")
        };
        let ScenarioRun::Single(plan) = spec.plan(&params()) else {
            panic!("single");
        };
        assert_eq!(plan.config.crowd.checks, 150, "small, not smoke");
    }

    #[test]
    fn axes_cross_product_and_join_labels() {
        let spec = ScenarioSpec {
            sweep: vec![
                SweepAxis::Seeds { count: 2 },
                SweepAxis::FailureRates {
                    arms: vec![
                        FailureRateArm {
                            label: "clean".to_owned(),
                            rate: 0.0,
                        },
                        FailureRateArm {
                            label: "flaky".to_owned(),
                            rate: 0.5,
                        },
                    ],
                },
            ],
            ..ScenarioSpec::single("grid", "2×2")
        };
        let arms = spec.plan(&params()).into_variants();
        let labels: Vec<&str> = arms.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "seed-1307/clean",
                "seed-1307/flaky",
                "seed-1308/clean",
                "seed-1308/flaky"
            ]
        );
        assert_eq!(arms[1].1.config.seed.value(), 1307);
        assert_eq!(arms[1].1.config.world.failure_rate, 0.5);
        assert_eq!(arms[3].1.config.seed.value(), 1308);
    }

    #[test]
    fn crowd_size_arms_scale_users_and_checks() {
        let spec = ScenarioSpec {
            sweep: vec![SweepAxis::CrowdSizes {
                arms: vec![CrowdSizeArm {
                    label: "tiny".to_owned(),
                    scale_pct: 25,
                }],
            }],
            ..ScenarioSpec::single("sizes", "scaled")
        };
        let arms = spec.plan(&params()).into_variants();
        // Smoke base: 30 users, 60 checks.
        assert_eq!(arms[0].1.config.crowd.users, 7);
        assert_eq!(arms[0].1.config.crowd.checks, 15);
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        let mut nameless = ScenarioSpec::single("", "no name");
        assert_eq!(nameless.validate(), Err(SpecError::EmptyName));
        nameless.name = "named".to_owned();
        nameless.base = Some("galactic".to_owned());
        assert!(matches!(
            nameless.validate(),
            Err(SpecError::UnknownProfile(_))
        ));

        let empty_axis = ScenarioSpec {
            sweep: vec![SweepAxis::Seeds { count: 0 }],
            ..ScenarioSpec::single("s", "d")
        };
        assert_eq!(empty_axis.validate(), Err(SpecError::EmptyAxis("Seeds")));

        let dup = ScenarioSpec {
            sweep: vec![SweepAxis::DesyncMins {
                arms: vec![
                    DesyncArm {
                        label: "same".to_owned(),
                        mins: 0,
                    },
                    DesyncArm {
                        label: "same".to_owned(),
                        mins: 1,
                    },
                ],
            }],
            ..ScenarioSpec::single("s", "d")
        };
        assert!(matches!(dup.validate(), Err(SpecError::BadLabel { .. })));

        let bad_rate = ScenarioSpec {
            sweep: vec![SweepAxis::FailureRates {
                arms: vec![FailureRateArm {
                    label: "over".to_owned(),
                    rate: 1.5,
                }],
            }],
            ..ScenarioSpec::single("s", "d")
        };
        assert!(matches!(
            bad_rate.validate(),
            Err(SpecError::RateOutOfRange(_))
        ));

        let empty_fleet = ScenarioSpec {
            sweep: vec![SweepAxis::VantageSubsets {
                arms: vec![VantageArm {
                    label: "none".to_owned(),
                    labels: vec![],
                }],
            }],
            ..ScenarioSpec::single("s", "d")
        };
        assert!(matches!(
            empty_fleet.validate(),
            Err(SpecError::EmptyVantageSubset(_))
        ));
    }

    #[test]
    fn patch_failure_rate_is_validated_up_front() {
        let out_of_range = ScenarioSpec {
            patch: ConfigPatch {
                failure_rate: Some(1.5),
                ..ConfigPatch::default()
            },
            ..ScenarioSpec::single("hot", "rate too high")
        };
        assert!(matches!(
            out_of_range.validate(),
            Err(SpecError::RateOutOfRange(_))
        ));
        let nan = ScenarioSpec {
            patch: ConfigPatch {
                failure_rate: Some(f64::NAN),
                ..ConfigPatch::default()
            },
            ..ScenarioSpec::single("nan", "rate is NaN")
        };
        assert!(matches!(nan.validate(), Err(SpecError::RateOutOfRange(_))));
    }

    #[test]
    fn from_json_rejects_unknown_keys() {
        // A misspelled patch field must not silently run the baseline.
        let typo = r#"{"name":"x","describe":"d","base":null,
            "patch":{"failure_rat":0.5},"sweep":[]}"#;
        let err = ScenarioSpec::from_json(typo).expect_err("typo must be rejected");
        assert!(err.contains("failure_rat"), "{err}");

        let top_level = r#"{"name":"x","describe":"d","base":null,
            "patch":{},"sweep":[],"sweeps":[]}"#;
        assert!(ScenarioSpec::from_json(top_level).is_err());

        let bad_axis = r#"{"name":"x","describe":"d","base":null,"patch":{},
            "sweep":[{"FailureRates":{"arms":[{"label":"a","rte":0.1}]}}]}"#;
        let err = ScenarioSpec::from_json(bad_axis).expect_err("arm typo rejected");
        assert!(err.contains("rte"), "{err}");

        let unknown_axis = r#"{"name":"x","describe":"d","base":null,"patch":{},
            "sweep":[{"Warp":{"arms":[]}}]}"#;
        assert!(ScenarioSpec::from_json(unknown_axis).is_err());
    }

    #[test]
    fn override_conflicts_name_clobbered_axes_only() {
        let failure_sweep = builtin_specs()
            .into_iter()
            .find(|s| s.name == "failure-sweep")
            .expect("builtin");
        let rate_override = ConfigPatch {
            failure_rate: Some(0.9),
            ..ConfigPatch::default()
        };
        assert_eq!(
            failure_sweep.override_conflicts(&rate_override),
            vec![("world.failure_rate", "FailureRates")]
        );
        // An unrelated override composes fine.
        let crawl_override = ConfigPatch {
            crawl_days: Some(1),
            ..ConfigPatch::default()
        };
        assert!(failure_sweep.override_conflicts(&crawl_override).is_empty());

        // Seeds and CrowdSizes derive from the base plan: overriding the
        // seed or crowd scale composes instead of conflicting.
        let seed_sweep = builtin_specs()
            .into_iter()
            .find(|s| s.name == "seed-sweep")
            .expect("builtin");
        let seed_override = ConfigPatch {
            seed: Some(42),
            ..ConfigPatch::default()
        };
        assert!(seed_sweep.override_conflicts(&seed_override).is_empty());
        let arms = ScenarioSpec {
            patch: seed_override,
            ..seed_sweep
        }
        .plan(&params())
        .into_variants();
        assert_eq!(arms[0].0, "seed-42", "the override moves the sweep base");
    }

    #[test]
    fn json_round_trip_preserves_spec_and_fingerprint() {
        for spec in builtin_specs() {
            let json = spec.to_json_pretty();
            let back = ScenarioSpec::from_json(&json)
                .unwrap_or_else(|e| panic!("{} round trip: {e}", spec.name));
            assert_eq!(back, spec, "{} did not round-trip", spec.name);
            assert_eq!(back.fingerprint(), spec.fingerprint());
        }
        assert!(ScenarioSpec::from_json("{ not json").is_err());
        assert!(
            ScenarioSpec::from_json("{\"name\":\"\"}").is_err(),
            "parse must validate"
        );
    }
}
