//! Experiment configuration.

use pd_crawler::CrawlConfig;
use pd_sheriff::CrowdConfig;
use pd_util::Seed;
use serde::{Deserialize, Serialize};

/// Knobs that shape only the analysis stage — never the measured data.
///
/// Changing an analysis knob re-derives figures from the same crowd,
/// crawl and persona artifacts, which is why the artifact store's
/// measurement-stage fingerprints exclude this section (see
/// [`crate::store`]): `pd rerun --fig1-top 10` reuses a stored crawl
/// instead of re-measuring it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// How many top-variation domains Fig. 1 ranks (paper: 27).
    pub fig1_domains: usize,
    /// Products probed per retailer by the factor-attribution extension.
    pub attribution_products: usize,
}

impl Default for AnalysisConfig {
    /// The paper's figure parameters: 27 Fig. 1 domains, 8 attribution
    /// products per retailer.
    fn default() -> Self {
        AnalysisConfig {
            fig1_domains: 27,
            attribution_products: 8,
        }
    }
}

/// Knobs of the simulated web itself (as opposed to the campaigns run
/// against it). Spec-addressable and part of every measurement
/// fingerprint: changing the world invalidates stored artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Transient fetch-failure probability per request, in `[0, 1]`
    /// (plumbs [`pd_web::WebWorld::set_failure_rate`]). Failures are
    /// deterministic in (client, uri, second) — the same requests drop
    /// at any thread count — and clear on retry, which is what the
    /// crawler's retry logic and the `failure-sweep` scenario exercise.
    pub failure_rate: f64,
}

impl Default for WorldConfig {
    /// A reliable web: no injected failures.
    fn default() -> Self {
        WorldConfig { failure_rate: 0.0 }
    }
}

/// Full configuration of one reproduction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Root seed; every stochastic component derives from it.
    pub seed: Seed,
    /// Simulated-web parameters (failure injection).
    pub world: WorldConfig,
    /// Crowd-phase parameters.
    pub crowd: CrowdConfig,
    /// Crawl-phase parameters.
    pub crawl: CrawlConfig,
    /// Long-tail domains beyond the 30 named retailers. 800 fillers give
    /// the crowd room to *reach* ~600 distinct domains in 1500 checks
    /// (the paper reports 600 domains checked).
    pub filler_domains: usize,
    /// FX-series horizon in days (must cover crowd window + crawl week).
    pub fx_days: usize,
    /// Products in the Fig. 10 login experiment.
    pub login_products: usize,
    /// Products per retailer in the persona experiment.
    pub persona_products: usize,
    /// Analysis-stage knobs (figure parameters; never affect measurement).
    pub analysis: AnalysisConfig,
}

impl ExperimentConfig {
    /// The paper-scale configuration: 340 users, 1 500 checks over 151
    /// days, 570 filler domains (600 total), 21-retailer crawl with ≤100
    /// products × 7 days, 40-ebook login experiment.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        ExperimentConfig {
            seed: Seed::new(seed),
            world: WorldConfig::default(),
            crowd: CrowdConfig::default(),
            crawl: CrawlConfig::default(),
            filler_domains: 800,
            fx_days: 160,
            login_products: 40,
            persona_products: 20,
            analysis: AnalysisConfig::default(),
        }
    }

    /// A mid-size configuration: large enough for stable figure shapes,
    /// ~5× cheaper than the paper scale (the bench crate's `medium`).
    #[must_use]
    pub fn medium(seed: u64) -> Self {
        ExperimentConfig {
            crowd: CrowdConfig {
                users: 120,
                checks: 400,
                ..CrowdConfig::default()
            },
            crawl: CrawlConfig {
                products_per_retailer: 30,
                days: 3,
                ..CrawlConfig::default()
            },
            filler_domains: 150,
            ..Self::paper(seed)
        }
    }

    /// A scaled-down configuration for tests and examples: same
    /// structure, ~30× less work.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        ExperimentConfig {
            seed: Seed::new(seed),
            world: WorldConfig::default(),
            crowd: CrowdConfig {
                users: 60,
                checks: 150,
                window_days: 40,
                ..CrowdConfig::default()
            },
            crawl: CrawlConfig {
                products_per_retailer: 12,
                days: 3,
                start_day: 45,
                ..CrawlConfig::default()
            },
            filler_domains: 60,
            fx_days: 60,
            login_products: 15,
            persona_products: 8,
            analysis: AnalysisConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// The smallest structurally complete configuration: CI smoke runs
    /// in well under a second while still exercising every stage.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        ExperimentConfig {
            seed: Seed::new(seed),
            world: WorldConfig::default(),
            crowd: CrowdConfig {
                users: 30,
                checks: 60,
                window_days: 30,
                ..CrowdConfig::default()
            },
            crawl: CrawlConfig {
                products_per_retailer: 6,
                days: 2,
                start_day: 35,
                ..CrawlConfig::default()
            },
            filler_domains: 30,
            fx_days: 60,
            login_products: 8,
            persona_products: 4,
            analysis: AnalysisConfig::default(),
        }
    }
}

impl Default for ExperimentConfig {
    /// Defaults to the paper scale with the experiment seed 1307.
    fn default() -> Self {
        Self::paper(pd_util::seed::EXPERIMENT_SEED.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper_numbers() {
        let c = ExperimentConfig::default();
        assert_eq!(c.seed.value(), 1307);
        assert_eq!(c.crowd.users, 340);
        assert_eq!(c.crowd.checks, 1_500);
        assert_eq!(c.crowd.window_days, 151);
        assert_eq!(c.crawl.products_per_retailer, 100);
        assert_eq!(c.crawl.days, 7);
        assert_eq!(c.filler_domains, 800);
        assert_eq!(c.login_products, 40);
    }

    #[test]
    fn small_is_structurally_complete() {
        let c = ExperimentConfig::small(1);
        assert!(c.crowd.checks > 0);
        assert!(c.crawl.products_per_retailer > 0);
        assert!(c.fx_days as u64 > c.crawl.start_day + c.crawl.days);
    }

    #[test]
    fn smoke_and_medium_are_structurally_complete_and_ordered() {
        for c in [ExperimentConfig::smoke(1), ExperimentConfig::medium(1)] {
            assert!(c.crowd.checks > 0);
            assert!(c.fx_days as u64 > c.crawl.start_day + c.crawl.days);
        }
        let smoke = ExperimentConfig::smoke(1);
        let small = ExperimentConfig::small(1);
        let medium = ExperimentConfig::medium(1);
        let paper = ExperimentConfig::paper(1);
        assert!(smoke.crowd.checks < small.crowd.checks);
        assert!(small.crowd.checks < medium.crowd.checks);
        assert!(medium.crowd.checks < paper.crowd.checks);
        assert!(medium.crawl.products_per_retailer < paper.crawl.products_per_retailer);
    }

    #[test]
    fn analysis_knobs_default_to_the_paper_figures() {
        let c = ExperimentConfig::default();
        assert_eq!(c.analysis.fig1_domains, 27);
        assert_eq!(c.analysis.attribution_products, 8);
        // Every profile shares the same analysis defaults: the knobs are
        // figure parameters, not workload scale.
        assert_eq!(ExperimentConfig::smoke(1).analysis, c.analysis);
        assert_eq!(ExperimentConfig::medium(1).analysis, c.analysis);
    }

    #[test]
    fn config_serializes() {
        let c = ExperimentConfig::small(7);
        let json = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, c.seed);
        assert_eq!(back.crowd.checks, c.crowd.checks);
    }
}
