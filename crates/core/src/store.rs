//! The on-disk artifact store: crawl once, re-analyze forever.
//!
//! The paper's methodology is "measure once, analyze many ways": one
//! months-long crowd + crawl dataset feeds every figure of the
//! evaluation. This module gives the engine the same property across
//! process lifetimes. Each stage artifact ([`crate::CrowdArtifact`],
//! [`crate::CrawlArtifact`], [`crate::PersonaArtifact`],
//! [`crate::AnalysisArtifact`]) is written as versioned JSON under a
//! directory, and a `manifest.json` records provenance: which scenario
//! produced it, at which seed, profile and thread count, under which
//! [`RunPlan`], and with which upstream fingerprints.
//!
//! ## Fingerprints, not file names
//!
//! An artifact is only ever trusted if its **fingerprint** matches the
//! plan asking for it. A [`Fingerprint`] is a stable 64-bit FNV-1a hash
//! over the canonical JSON of everything the producing stage depends on:
//! the schema version, the stage name, the [`ExperimentConfig`] (minus
//! the analysis-only section for measurement stages), and the plan's
//! engine knobs (desync skew, cleaning, vantage subset). The analysis
//! fingerprint additionally chains the three upstream measurement
//! fingerprints. File names are just locators; a renamed, stale or
//! hand-edited file fails its fingerprint check and the stage recomputes.
//!
//! Because measurement fingerprints exclude [`ExperimentConfig::analysis`],
//! a stored crawl stays valid when only figure parameters change — which
//! is exactly what `pd rerun` exploits to re-analyze without re-measuring.
//!
//! ## Example
//!
//! ```
//! use pd_core::store::{self, ArtifactStore, Provenance};
//! use pd_core::{CrawlArtifact, RunPlan, ExperimentConfig, StageKind};
//!
//! let dir = std::env::temp_dir().join(format!("pd-store-doc-{}", std::process::id()));
//! let plan = RunPlan::new(ExperimentConfig::smoke(7));
//! let mut s = ArtifactStore::create(&dir, Provenance::new("smoke", "", "smoke", 7, 1), &plan, None)
//!     .expect("store creates");
//!
//! // Save an (empty) crawl artifact under its plan fingerprint...
//! let fp = store::crawl_fingerprint(&plan);
//! let art = CrawlArtifact { store: pd_sheriff::MeasurementStore::new(), stats: vec![] };
//! s.save(StageKind::Crawl.as_str(), fp, &[], &art).expect("saves");
//!
//! // ...and it only loads back under the *same* plan.
//! let reopened = ArtifactStore::open(&dir).expect("store opens");
//! assert!(reopened.load::<CrawlArtifact>("crawl", fp).is_ok());
//! let other = store::crawl_fingerprint(&RunPlan::new(ExperimentConfig::smoke(8)));
//! assert!(reopened.load::<CrawlArtifact>("crawl", other).is_err());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::binfmt;
use crate::config::ExperimentConfig;
use crate::observer::StageKind;
use crate::scenario::RunPlan;
use crate::spec::ScenarioSpec;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// On-disk schema version. Bump whenever an artifact's serialized shape
/// changes; every envelope and manifest records it, and a version this
/// build cannot read is a hard rejection (never a silent misparse).
///
/// v2: `ExperimentConfig` grew the `world` section (failure injection),
/// `RunPlan` grew `targets_from_crowd`, and the manifest records the
/// producing [`ScenarioSpec`].
///
/// v3: the store learned the compact binary payload format
/// ([`StoreFormat::Binary`]) and the manifest entries record a format
/// and chunk count. The *artifact shapes* did not change, so v2 stores
/// remain fully readable ([`MIN_SCHEMA_VERSION`]) and their
/// fingerprints stay valid (the fingerprint basis carries its own
/// schema revision, `FINGERPRINT_SCHEMA`, which did not move).
pub const SCHEMA_VERSION: u32 = 3;

/// Oldest on-disk schema version this build still reads. v2 stores are
/// plain-JSON-only but shape-identical, so they load as-is.
pub const MIN_SCHEMA_VERSION: u32 = 2;

/// The schema revision folded into every fingerprint basis. This is
/// *not* bumped in lockstep with [`SCHEMA_VERSION`]: a container-level
/// change (v2→v3 added a payload encoding, not new artifact semantics)
/// must not invalidate every previously measured store. Bump this only
/// when the meaning of a stored artifact changes.
const FINGERPRINT_SCHEMA: u32 = 2;

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// A stable 64-bit digest of everything a stage's output depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The raw 64-bit digest.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit form produced by [`Display`](fmt::Display).
    #[must_use]
    pub fn parse(s: &str) -> Option<Fingerprint> {
        (s.len() == 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
            .map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a over a byte string (the same construction the vendored
/// proptest uses for test seeds; stable across platforms and runs).
/// Also the digest behind [`ScenarioSpec::fingerprint`].
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// How a stage payload is laid out on disk.
///
/// Both formats sit behind the exact same schema + fingerprint checks;
/// the format decides only how the payload bytes are produced and
/// consumed. JSON (`<stage>.json`) is the human-inspectable default;
/// binary (`<stage>.bin`) is the compact v3 encoding: framed rows in
/// domain-partitioned chunks behind a chunk index, so a single domain
/// loads without deserializing the whole payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFormat {
    /// One JSON envelope per stage, payload inline.
    Json,
    /// Length-prefixed framed-rows binary envelope with a chunk index.
    Binary,
}

impl StoreFormat {
    /// The flag spelling (`json` / `binary`).
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            StoreFormat::Json => "json",
            StoreFormat::Binary => "binary",
        }
    }

    /// Parses the flag spelling produced by [`Self::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<StoreFormat> {
        match s {
            "json" => Some(StoreFormat::Json),
            "binary" => Some(StoreFormat::Binary),
            _ => None,
        }
    }

    /// The artifact file name for a stage in this format.
    fn file_name(self, stage: &str) -> String {
        match self {
            StoreFormat::Json => format!("{stage}.json"),
            StoreFormat::Binary => format!("{stage}.bin"),
        }
    }
}

impl fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for StoreFormat {
    fn serialize(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for StoreFormat {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some(s) => {
                StoreFormat::parse(s).ok_or_else(|| serde::Error::unknown_variant(s, "StoreFormat"))
            }
            None => Err(serde::Error::expected("string", "StoreFormat")),
        }
    }
}

/// The canonical fingerprint basis of a plan: config (optionally with
/// the analysis-only section removed), engine knobs, schema version.
fn basis_value(plan: &RunPlan, include_analysis: bool) -> Value {
    let mut config = serde_json::to_value(&plan.config);
    if !include_analysis {
        if let Value::Object(map) = &mut config {
            map.remove("analysis");
        }
    }
    let mut m = serde::Map::new();
    m.insert(
        "schema".to_owned(),
        serde_json::to_value(&FINGERPRINT_SCHEMA),
    );
    m.insert("config".to_owned(), config);
    m.insert(
        "desync_ms".to_owned(),
        serde_json::to_value(&plan.desync.as_millis()),
    );
    m.insert("cleaning".to_owned(), serde_json::to_value(&plan.cleaning));
    m.insert(
        "vantage_labels".to_owned(),
        serde_json::to_value(&plan.vantage_labels),
    );
    m.insert(
        "targets_from_crowd".to_owned(),
        serde_json::to_value(&plan.targets_from_crowd),
    );
    Value::Object(m)
}

fn fingerprint_of(stage: &str, basis: &Value, upstream: &[Fingerprint]) -> Fingerprint {
    let mut m = serde::Map::new();
    m.insert("stage".to_owned(), Value::String(stage.to_owned()));
    m.insert("basis".to_owned(), basis.clone());
    m.insert(
        "upstream".to_owned(),
        Value::Array(
            upstream
                .iter()
                .map(|fp| Value::String(fp.to_string()))
                .collect(),
        ),
    );
    let text = serde_json::to_string(&Value::Object(m)).expect("value serializes");
    Fingerprint(fnv1a64(text.as_bytes()))
}

/// The crowd-stage fingerprint of a plan.
///
/// Measurement fingerprints are deliberately conservative: they cover
/// the full configuration except the analysis-only section, so any
/// change that *could* reshape the measured world invalidates the
/// artifact, while figure-parameter changes never do.
#[must_use]
pub fn crowd_fingerprint(plan: &RunPlan) -> Fingerprint {
    fingerprint_of(StageKind::Crowd.as_str(), &basis_value(plan, false), &[])
}

/// The crawl-stage fingerprint of a plan (same conservative basis).
#[must_use]
pub fn crawl_fingerprint(plan: &RunPlan) -> Fingerprint {
    fingerprint_of(StageKind::Crawl.as_str(), &basis_value(plan, false), &[])
}

/// The persona-stage fingerprint of a plan (same conservative basis).
#[must_use]
pub fn personas_fingerprint(plan: &RunPlan) -> Fingerprint {
    fingerprint_of(StageKind::Personas.as_str(), &basis_value(plan, false), &[])
}

/// The analysis fingerprint: the full config (including the analysis
/// knobs) chained with the three upstream measurement fingerprints.
#[must_use]
pub fn analysis_fingerprint(plan: &RunPlan) -> Fingerprint {
    let upstream = [
        crowd_fingerprint(plan),
        crawl_fingerprint(plan),
        personas_fingerprint(plan),
    ];
    fingerprint_of(
        StageKind::Analysis.as_str(),
        &basis_value(plan, true),
        &upstream,
    )
}

/// The fingerprint of a measurement stage, by kind. Returns `None` for
/// stages the store does not persist standalone ([`StageKind::Build`])
/// or whose fingerprint chains upstreams ([`StageKind::Analysis`] — use
/// [`analysis_fingerprint`]).
#[must_use]
pub fn measurement_fingerprint(stage: StageKind, plan: &RunPlan) -> Option<Fingerprint> {
    match stage {
        StageKind::Crowd => Some(crowd_fingerprint(plan)),
        StageKind::Crawl => Some(crawl_fingerprint(plan)),
        StageKind::Personas => Some(personas_fingerprint(plan)),
        StageKind::Build | StageKind::Analysis => None,
    }
}

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (create, read, write, rename).
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// The directory has no `manifest.json` — it is not an artifact store.
    NoManifest {
        /// The directory probed.
        dir: String,
    },
    /// A file exists but cannot be parsed, or contradicts the manifest.
    Corrupt {
        /// The offending file.
        path: String,
        /// What went wrong.
        detail: String,
    },
    /// The file was written by a different on-disk schema version.
    SchemaMismatch {
        /// The offending file.
        path: String,
        /// The version found on disk (ours is [`SCHEMA_VERSION`]).
        found: u32,
    },
    /// The stored artifact's fingerprint does not match the requesting
    /// plan — the artifact was produced under a different configuration.
    StaleFingerprint {
        /// The stage asked for.
        stage: String,
        /// The fingerprint the current plan requires.
        expected: String,
        /// The fingerprint found in the store.
        found: String,
    },
    /// The manifest has no entry for the requested stage.
    MissingStage {
        /// The stage asked for.
        stage: String,
    },
    /// The directory already holds artifacts produced by a different
    /// run plan; writing would destroy them, so the save refuses.
    PlanMismatch {
        /// The store directory.
        dir: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "artifact store I/O on {path}: {detail}"),
            StoreError::NoManifest { dir } => {
                write!(f, "{dir} is not an artifact store (no {MANIFEST_FILE})")
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt artifact file {path}: {detail}")
            }
            StoreError::SchemaMismatch { path, found } => write!(
                f,
                "{path} uses on-disk schema v{found}, this build reads \
                 v{MIN_SCHEMA_VERSION}..v{SCHEMA_VERSION}"
            ),
            StoreError::StaleFingerprint {
                stage,
                expected,
                found,
            } => write!(
                f,
                "stale {stage} artifact: plan requires fingerprint {expected}, store has {found}"
            ),
            StoreError::MissingStage { stage } => {
                write!(f, "artifact store has no {stage} artifact")
            }
            StoreError::PlanMismatch { dir } => write!(
                f,
                "{dir} holds artifacts from a different run plan; refusing to overwrite \
                 (inspect with `pd artifacts ls {dir}`, or choose another directory)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Who produced a store: the scenario, variant label, profile, seed and
/// thread count of the run (descriptive only — the fingerprints, not the
/// provenance, decide reuse).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Registry name of the scenario (`"custom"` for raw-config runs).
    pub scenario: String,
    /// Sweep-arm label (empty for single runs).
    pub label: String,
    /// Profile flag spelling (`smoke`/`small`/`medium`/`paper`).
    pub profile: String,
    /// Root seed of the run.
    pub seed: u64,
    /// Worker threads the producing run used (reports are identical at
    /// any thread count; recorded for performance archaeology).
    pub threads: u64,
    /// Unix milliseconds when the store was created.
    pub created_unix_ms: u64,
}

impl Provenance {
    /// A provenance record stamped with the current wall-clock time.
    #[must_use]
    pub fn new(scenario: &str, label: &str, profile: &str, seed: u64, threads: usize) -> Self {
        let created_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        Provenance {
            scenario: scenario.to_owned(),
            label: label.to_owned(),
            profile: profile.to_owned(),
            seed,
            threads: threads as u64,
            created_unix_ms,
        }
    }
}

/// The serialized form of a [`RunPlan`] (the manifest must be able to
/// reconstruct the exact producing plan for `pd rerun`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRecord {
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// Fan-out desynchronization skew, in simulated milliseconds.
    pub desync_ms: u64,
    /// Whether the Sec. 3.2 cleaning pass ran.
    pub cleaning: bool,
    /// The vantage subset, if the plan restricted the fleet.
    pub vantage_labels: Option<Vec<String>>,
    /// The minimum confirmed-variation count when the plan crawled
    /// crowd-ranked targets instead of the paper's list.
    pub targets_from_crowd: Option<usize>,
}

impl PlanRecord {
    /// Records a plan.
    #[must_use]
    pub fn from_plan(plan: &RunPlan) -> Self {
        PlanRecord {
            config: plan.config.clone(),
            desync_ms: plan.desync.as_millis(),
            cleaning: plan.cleaning,
            vantage_labels: plan.vantage_labels.clone(),
            targets_from_crowd: plan.targets_from_crowd,
        }
    }

    /// Reconstructs the plan.
    #[must_use]
    pub fn to_plan(&self) -> RunPlan {
        RunPlan {
            config: self.config.clone(),
            desync: pd_net::clock::SimDuration::from_millis(self.desync_ms),
            cleaning: self.cleaning,
            vantage_labels: self.vantage_labels.clone(),
            targets_from_crowd: self.targets_from_crowd,
        }
    }
}

/// One stored artifact, as listed by the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Stage name ([`StageKind::as_str`]).
    pub stage: String,
    /// Hex fingerprint the artifact was stored under.
    pub fingerprint: String,
    /// File name inside the store directory (a locator only — the
    /// envelope's own fingerprint is what gets trusted).
    pub file: String,
    /// Serialized size in bytes.
    pub bytes: u64,
    /// Serialized size of the payload alone (the artifact body without
    /// the envelope framing — the number the binary payload encoding
    /// shrinks). `None` in manifests written before this field existed.
    pub payload_bytes: Option<u64>,
    /// Payload layout of the file. `None` in manifests written before
    /// the binary format existed (implied [`StoreFormat::Json`]).
    pub format: Option<StoreFormat>,
    /// Chunk count of a binary file (one meta chunk + one row chunk per
    /// domain per row section). `None` for JSON entries.
    pub chunks: Option<u32>,
    /// Hex fingerprints of the upstream artifacts this one was derived
    /// from (empty for measurement stages).
    pub upstream: Vec<String>,
}

impl ManifestEntry {
    /// The entry's payload layout ([`StoreFormat::Json`] when the
    /// manifest predates the format field).
    #[must_use]
    pub fn store_format(&self) -> StoreFormat {
        self.format.unwrap_or(StoreFormat::Json)
    }
}

/// The store's index: provenance, the producing plan, and every entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// On-disk schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Who produced the store.
    pub provenance: Provenance,
    /// The exact plan the artifacts were measured under.
    pub plan: PlanRecord,
    /// The declarative spec the run was lowered from, verbatim (`None`
    /// for raw-config runs built without a scenario). Descriptive like
    /// the provenance — the fingerprints decide reuse — but it makes a
    /// store reproducible from its own metadata.
    pub spec: Option<ScenarioSpec>,
    /// Stored artifacts, in save order.
    pub entries: Vec<ManifestEntry>,
}

/// The versioned wrapper around every artifact file. The payload is
/// only handed to deserialization after the schema version, stage name
/// and fingerprint all check out.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope {
    schema_version: u32,
    stage: String,
    fingerprint: String,
    payload: Value,
}

/// Health of one manifest entry, as reported by [`ArtifactStore::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryHealth {
    /// File present, envelope consistent with the manifest.
    Ok,
    /// The manifest references a file that does not exist.
    MissingFile,
    /// The file exists but is unreadable, unparsable, or contradicts
    /// the manifest (wrong stage, fingerprint or schema).
    Corrupt(String),
}

impl fmt::Display for EntryHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryHealth::Ok => f.write_str("ok"),
            EntryHealth::MissingFile => f.write_str("missing file"),
            EntryHealth::Corrupt(detail) => write!(f, "corrupt: {detail}"),
        }
    }
}

/// A directory of fingerprinted, versioned stage artifacts plus the
/// manifest indexing them. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    manifest: Manifest,
    format: StoreFormat,
}

impl ArtifactStore {
    /// Does `dir` look like a store (i.e. hold a manifest)?
    #[must_use]
    pub fn is_store(dir: &Path) -> bool {
        dir.join(MANIFEST_FILE).is_file()
    }

    /// Creates (or wipes and re-creates) a store at `dir` for the given
    /// producer. The directory is created if missing; an existing
    /// manifest is replaced, and superseded stage files are overwritten
    /// lazily as stages save.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory or manifest cannot be
    /// written.
    pub fn create(
        dir: &Path,
        provenance: Provenance,
        plan: &RunPlan,
        spec: Option<ScenarioSpec>,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let store = ArtifactStore {
            dir: dir.to_path_buf(),
            manifest: Manifest {
                schema_version: SCHEMA_VERSION,
                provenance,
                plan: PlanRecord::from_plan(plan),
                spec,
                entries: Vec::new(),
            },
            format: StoreFormat::Json,
        };
        store.write_manifest()?;
        Ok(store)
    }

    /// Opens an existing store.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoManifest`] when `dir` has no manifest;
    /// [`StoreError::Corrupt`] when the manifest does not parse;
    /// [`StoreError::SchemaMismatch`] when it was written by a
    /// different schema version; [`StoreError::Io`] on read failure.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        if !path.is_file() {
            return Err(StoreError::NoManifest {
                dir: dir.display().to_string(),
            });
        }
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
        let manifest: Manifest = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&manifest.schema_version) {
            return Err(StoreError::SchemaMismatch {
                path: path.display().to_string(),
                found: manifest.schema_version,
            });
        }
        Ok(ArtifactStore {
            dir: dir.to_path_buf(),
            manifest,
            format: StoreFormat::Json,
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The payload format subsequent [`save`](Self::save) calls write.
    /// Loads always auto-detect from the manifest entry, so a store can
    /// hold mixed formats.
    #[must_use]
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    /// Sets the payload format for subsequent saves.
    pub fn set_format(&mut self, format: StoreFormat) {
        self.format = format;
    }

    /// The manifest (provenance, plan, entries).
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The manifest entry for a stage, if one was saved.
    #[must_use]
    pub fn entry(&self, stage: &str) -> Option<&ManifestEntry> {
        self.manifest.entries.iter().find(|e| e.stage == stage)
    }

    /// Saves an artifact under its fingerprint, replacing any previous
    /// entry for the same stage. The file is written atomically (unique
    /// temp file + fsync + rename) in the store's current
    /// [`format`](Self::format) and the manifest is updated on disk
    /// before the call returns. Returns the serialized size in bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the artifact or manifest cannot be
    /// written.
    pub fn save<T: Serialize>(
        &mut self,
        stage: &str,
        fingerprint: Fingerprint,
        upstream: &[Fingerprint],
        artifact: &T,
    ) -> Result<u64, StoreError> {
        self.save_value(stage, fingerprint, upstream, serde_json::to_value(artifact))
    }

    /// Format-dispatching core of [`save`](Self::save); also the target
    /// of [`migrate`](Self::migrate), which re-saves decoded payloads.
    fn save_value(
        &mut self,
        stage: &str,
        fingerprint: Fingerprint,
        upstream: &[Fingerprint],
        payload: Value,
    ) -> Result<u64, StoreError> {
        let (bytes, payload_bytes, chunks) = match self.format {
            StoreFormat::Json => {
                let envelope = Envelope {
                    schema_version: SCHEMA_VERSION,
                    stage: stage.to_owned(),
                    fingerprint: fingerprint.to_string(),
                    payload,
                };
                let text = serde_json::to_string(&envelope).expect("envelope serializes");
                // Payload size without re-serializing the payload:
                // render the same envelope around a `null` payload and
                // subtract the framing (rendering is deterministic —
                // sorted keys, no whitespace — so the framing length is
                // exact).
                let framing = {
                    let hollow = Envelope {
                        payload: Value::Null,
                        ..envelope
                    };
                    serde_json::to_string(&hollow)
                        .expect("envelope serializes")
                        .len()
                        - "null".len()
                };
                let payload_bytes = (text.len() - framing) as u64;
                (text.into_bytes(), payload_bytes, None)
            }
            StoreFormat::Binary => {
                let (bytes, payload_bytes, chunks) = encode_binary(stage, fingerprint, payload);
                (bytes, payload_bytes, Some(chunks))
            }
        };
        let file = self.format.file_name(stage);
        let path = self.dir.join(&file);
        write_atomic(&path, &bytes)?;
        // A format switch leaves the stage's old file under the other
        // extension; drop it so the directory never holds two
        // generations of one stage.
        if let Some(old) = self.entry(stage).map(|e| e.file.clone()) {
            if old != file {
                let _ = std::fs::remove_file(self.dir.join(old));
            }
        }
        let entry = ManifestEntry {
            stage: stage.to_owned(),
            fingerprint: fingerprint.to_string(),
            file,
            bytes: bytes.len() as u64,
            payload_bytes: Some(payload_bytes),
            format: Some(self.format),
            chunks,
            upstream: upstream.iter().map(Fingerprint::to_string).collect(),
        };
        match self.manifest.entries.iter_mut().find(|e| e.stage == stage) {
            Some(existing) => *existing = entry,
            None => self.manifest.entries.push(entry),
        }
        // Any save from this build upgrades the container version (the
        // artifact shapes are unchanged; see SCHEMA_VERSION docs).
        self.manifest.schema_version = SCHEMA_VERSION;
        self.write_manifest()?;
        Ok(bytes.len() as u64)
    }

    /// Loads a stage artifact, trusting nothing: the manifest must list
    /// the stage, the manifest's fingerprint and the envelope's own
    /// fingerprint must both equal `expected`, the schema version must
    /// match, and only then is the payload deserialized.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingStage`] when the manifest has no such stage;
    /// [`StoreError::StaleFingerprint`] when the stored artifact was
    /// produced under a different plan; [`StoreError::SchemaMismatch`],
    /// [`StoreError::Corrupt`] or [`StoreError::Io`] when the file is
    /// unusable.
    pub fn load<T: Deserialize>(
        &self,
        stage: &str,
        expected: Fingerprint,
    ) -> Result<T, StoreError> {
        let entry = self.entry(stage).ok_or_else(|| StoreError::MissingStage {
            stage: stage.to_owned(),
        })?;
        if entry.fingerprint != expected.to_string() {
            return Err(StoreError::StaleFingerprint {
                stage: stage.to_owned(),
                expected: expected.to_string(),
                found: entry.fingerprint.clone(),
            });
        }
        let payload = match entry.store_format() {
            StoreFormat::Json => {
                let envelope = self.read_envelope(entry)?;
                if envelope.fingerprint != expected.to_string() {
                    return Err(StoreError::StaleFingerprint {
                        stage: stage.to_owned(),
                        expected: expected.to_string(),
                        found: envelope.fingerprint,
                    });
                }
                envelope.payload
            }
            StoreFormat::Binary => self.open_chunked_entry(entry)?.assemble_value()?,
        };
        let path = self.dir.join(&entry.file);
        serde_json::from_value(payload).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            detail: format!("payload does not deserialize: {e}"),
        })
    }

    /// Opens a binary stage entry for chunked reads: the header and
    /// every chunk checksum are validated up front (so corruption is
    /// caught here, exactly like a failed JSON parse), but no chunk is
    /// *decoded* — [`ChunkedPayload::read_chunk`] decodes single
    /// domains on demand, which is what lets `pd rerun` re-analyze a
    /// store without materializing whole measurement payloads.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingStage`] / [`StoreError::StaleFingerprint`]
    /// as for [`load`](Self::load); [`StoreError::Corrupt`] when the
    /// entry is stored as JSON (callers check
    /// [`ManifestEntry::store_format`] first) or the file fails
    /// validation.
    pub fn open_chunked(
        &self,
        stage: &str,
        expected: Fingerprint,
    ) -> Result<ChunkedPayload, StoreError> {
        let entry = self.entry(stage).ok_or_else(|| StoreError::MissingStage {
            stage: stage.to_owned(),
        })?;
        if entry.fingerprint != expected.to_string() {
            return Err(StoreError::StaleFingerprint {
                stage: stage.to_owned(),
                expected: expected.to_string(),
                found: entry.fingerprint.clone(),
            });
        }
        self.open_chunked_entry(entry)
    }

    /// Validates and opens an entry's binary file against its manifest
    /// record (magic, schema, stage, fingerprint, every chunk checksum).
    fn open_chunked_entry(&self, entry: &ManifestEntry) -> Result<ChunkedPayload, StoreError> {
        let path = self.dir.join(&entry.file);
        if entry.store_format() != StoreFormat::Binary {
            return Err(StoreError::Corrupt {
                path: path.display().to_string(),
                detail: format!(
                    "stage {} is stored as {}, not binary",
                    entry.stage,
                    entry.store_format()
                ),
            });
        }
        ChunkedPayload::open(&path, &entry.stage, &entry.fingerprint)
    }

    /// Decodes an entry's payload back to its [`Value`] tree regardless
    /// of format (the migration path).
    fn load_payload_value(&self, entry: &ManifestEntry) -> Result<Value, StoreError> {
        match entry.store_format() {
            StoreFormat::Json => Ok(self.read_envelope(entry)?.payload),
            StoreFormat::Binary => self.open_chunked_entry(entry)?.assemble_value(),
        }
    }

    /// Re-encodes every stored artifact in `format`, leaving stages,
    /// fingerprints and payloads untouched. Idempotent: entries already
    /// in the target format are rewritten in place. Returns per-stage
    /// `(stage, old bytes, new bytes)` rows in manifest order.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from decoding an existing entry or writing
    /// the re-encoded one; entries before the failing one are already
    /// migrated (each save is atomic and manifest-consistent).
    pub fn migrate(&mut self, format: StoreFormat) -> Result<Vec<(String, u64, u64)>, StoreError> {
        let entries = self.manifest.entries.clone();
        self.format = format;
        let mut report = Vec::with_capacity(entries.len());
        for entry in entries {
            let payload = self.load_payload_value(&entry)?;
            let fingerprint =
                Fingerprint::parse(&entry.fingerprint).ok_or_else(|| StoreError::Corrupt {
                    path: self.dir.join(MANIFEST_FILE).display().to_string(),
                    detail: format!(
                        "manifest fingerprint {:?} for stage {} is not 16 hex digits",
                        entry.fingerprint, entry.stage
                    ),
                })?;
            let upstream: Vec<Fingerprint> = entry
                .upstream
                .iter()
                .map(|fp| {
                    Fingerprint::parse(fp).ok_or_else(|| StoreError::Corrupt {
                        path: self.dir.join(MANIFEST_FILE).display().to_string(),
                        detail: format!(
                            "manifest upstream fingerprint {fp:?} for stage {} is not 16 hex \
                             digits",
                            entry.stage
                        ),
                    })
                })
                .collect::<Result<_, _>>()?;
            let new_bytes = self.save_value(&entry.stage, fingerprint, &upstream, payload)?;
            report.push((entry.stage, entry.bytes, new_bytes));
        }
        Ok(report)
    }

    /// Checks every manifest entry against its file: existence, parse
    /// (JSON) or header + chunk checksums (binary), schema version,
    /// stage and fingerprint consistency. Used by `pd artifacts ls`
    /// (payload sizes come straight off the manifest —
    /// [`ManifestEntry::payload_bytes`] is recorded at save time).
    #[must_use]
    pub fn verify(&self) -> Vec<(ManifestEntry, EntryHealth)> {
        self.manifest
            .entries
            .iter()
            .map(|entry| {
                let outcome = match entry.store_format() {
                    StoreFormat::Json => self.read_envelope(entry).map(|_| ()),
                    StoreFormat::Binary => self.open_chunked_entry(entry).map(|_| ()),
                };
                let health = match outcome {
                    Ok(()) => EntryHealth::Ok,
                    Err(StoreError::Io { detail, .. }) if !self.dir.join(&entry.file).is_file() => {
                        let _ = detail;
                        EntryHealth::MissingFile
                    }
                    Err(e) => EntryHealth::Corrupt(e.to_string()),
                };
                (entry.clone(), health)
            })
            .collect()
    }

    /// Reads and validates an entry's envelope (schema, stage name and
    /// fingerprint must agree with the manifest), without touching the
    /// payload.
    fn read_envelope(&self, entry: &ManifestEntry) -> Result<Envelope, StoreError> {
        let path = self.dir.join(&entry.file);
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
        let envelope: Envelope = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&envelope.schema_version) {
            return Err(StoreError::SchemaMismatch {
                path: path.display().to_string(),
                found: envelope.schema_version,
            });
        }
        if envelope.stage != entry.stage || envelope.fingerprint != entry.fingerprint {
            return Err(StoreError::Corrupt {
                path: path.display().to_string(),
                detail: format!(
                    "envelope says stage {} fingerprint {}, manifest says stage {} \
                     fingerprint {}",
                    envelope.stage, envelope.fingerprint, entry.stage, entry.fingerprint
                ),
            });
        }
        Ok(envelope)
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let path = self.dir.join(MANIFEST_FILE);
        let text = serde_json::to_string_pretty(&self.manifest).expect("manifest serializes");
        write_atomic(&path, text.as_bytes())
    }
}

/// Magic bytes opening every binary artifact file (`<stage>.bin`).
const BIN_MAGIC: [u8; 4] = *b"PDB3";

/// Where the row arrays live inside a stage payload. Each listed
/// section is pulled out of the payload at save time and partitioned
/// into one chunk per domain (first-seen order, matching
/// `MeasurementStore::domains`); everything else — and every stage not
/// listed — stays in the meta chunk. Row membership is decided by the
/// row's own `domain` field, and every row carries its original array
/// index, so reassembly is exact regardless of chunk order.
fn row_sections(stage: &str) -> &'static [(&'static str, &'static [&'static str])] {
    match stage {
        "crowd" => &[
            ("raw", &["raw", "records"]),
            ("cleaned", &["cleaned", "records"]),
        ],
        "crawl" => &[("store", &["store", "records"])],
        _ => &[],
    }
}

/// Mutable access to the row array at `path` inside a payload tree.
fn rows_slot<'a>(payload: &'a mut Value, path: &[&str]) -> Option<&'a mut Vec<Value>> {
    let mut cur = payload;
    for key in path {
        match cur {
            Value::Object(map) => cur = map.get_mut(*key)?,
            _ => return None,
        }
    }
    match cur {
        Value::Array(rows) => Some(rows),
        _ => None,
    }
}

/// One chunk's entry in the binary file's index: where it lives inside
/// the chunk region and what it holds.
#[derive(Debug, Clone)]
struct ChunkInfo {
    /// Which row section the chunk belongs to (empty for the meta chunk).
    section: String,
    /// The partition key — the domain (empty for the meta chunk).
    name: String,
    /// Byte offset inside the chunk region.
    offset: u64,
    /// Byte length.
    len: u64,
    /// Row count (0 for the meta chunk).
    rows: u64,
    /// FNV-1a64 over the chunk bytes.
    checksum: u64,
}

impl ChunkInfo {
    fn to_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("section".to_owned(), Value::String(self.section.clone()));
        m.insert("name".to_owned(), Value::String(self.name.clone()));
        m.insert("offset".to_owned(), Value::UInt(self.offset));
        m.insert("len".to_owned(), Value::UInt(self.len));
        m.insert("rows".to_owned(), Value::UInt(self.rows));
        m.insert(
            "checksum".to_owned(),
            Value::String(format!("{:016x}", self.checksum)),
        );
        Value::Object(m)
    }

    fn from_value(v: &Value) -> Result<ChunkInfo, String> {
        let map = match v {
            Value::Object(map) => map,
            _ => return Err("chunk index entry is not an object".to_owned()),
        };
        let str_field = |key: &str| {
            map.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("chunk index entry missing string field {key:?}"))
        };
        let u64_field = |key: &str| {
            map.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("chunk index entry missing integer field {key:?}"))
        };
        let checksum_hex = str_field("checksum")?;
        let checksum = (checksum_hex.len() == 16)
            .then(|| u64::from_str_radix(&checksum_hex, 16).ok())
            .flatten()
            .ok_or_else(|| format!("bad chunk checksum {checksum_hex:?}"))?;
        Ok(ChunkInfo {
            section: str_field("section")?,
            name: str_field("name")?,
            offset: u64_field("offset")?,
            len: u64_field("len")?,
            rows: u64_field("rows")?,
            checksum,
        })
    }
}

/// Encodes a payload into the binary file layout: magic, u32-LE header
/// length, binfmt-encoded header (schema, stage, fingerprint, chunk
/// index), then the chunk region — the meta chunk (the payload with
/// its row arrays emptied) followed by one framed-rows chunk per
/// domain per row section. Returns the file bytes, the chunk-region
/// size (the payload-only byte count) and the chunk count.
fn encode_binary(stage: &str, fingerprint: Fingerprint, mut payload: Value) -> (Vec<u8>, u64, u32) {
    // Pull each row section out of the payload and partition by domain.
    let mut row_chunks: Vec<(String, String, Vec<u8>, u64)> = Vec::new();
    for (section, path) in row_sections(stage) {
        let Some(rows) = rows_slot(&mut payload, path) else {
            continue;
        };
        let rows = std::mem::take(rows);
        let mut order: Vec<&str> = Vec::new();
        let mut by_domain: std::collections::HashMap<&str, Vec<(u64, &Value)>> =
            std::collections::HashMap::new();
        for (index, row) in rows.iter().enumerate() {
            let domain = match row {
                Value::Object(map) => map.get("domain").and_then(Value::as_str).unwrap_or(""),
                _ => "",
            };
            let bucket = by_domain.entry(domain).or_default();
            if bucket.is_empty() {
                order.push(domain);
            }
            bucket.push((index as u64, row));
        }
        for domain in order {
            let bucket = &by_domain[domain];
            row_chunks.push((
                (*section).to_owned(),
                domain.to_owned(),
                binfmt::encode_rows(bucket),
                bucket.len() as u64,
            ));
        }
    }
    let meta_bytes = binfmt::encode_one(&payload);

    // Lay the chunk region out: meta first, then the row chunks.
    let mut region: Vec<u8> = Vec::new();
    let mut place = |bytes: &[u8]| {
        let offset = region.len() as u64;
        region.extend_from_slice(bytes);
        (offset, bytes.len() as u64, fnv1a64(bytes))
    };
    let (offset, len, checksum) = place(&meta_bytes);
    let meta = ChunkInfo {
        section: String::new(),
        name: String::new(),
        offset,
        len,
        rows: 0,
        checksum,
    };
    let chunks: Vec<ChunkInfo> = row_chunks
        .iter()
        .map(|(section, name, bytes, rows)| {
            let (offset, len, checksum) = place(bytes);
            ChunkInfo {
                section: section.clone(),
                name: name.clone(),
                offset,
                len,
                rows: *rows,
                checksum,
            }
        })
        .collect();

    let mut header = serde::Map::new();
    header.insert(
        "schema_version".to_owned(),
        Value::UInt(u64::from(SCHEMA_VERSION)),
    );
    header.insert("stage".to_owned(), Value::String(stage.to_owned()));
    header.insert(
        "fingerprint".to_owned(),
        Value::String(fingerprint.to_string()),
    );
    header.insert("meta".to_owned(), meta.to_value());
    header.insert(
        "chunks".to_owned(),
        Value::Array(chunks.iter().map(ChunkInfo::to_value).collect()),
    );
    let header_bytes = binfmt::encode_one(&Value::Object(header));

    let mut file = Vec::with_capacity(8 + header_bytes.len() + region.len());
    file.extend_from_slice(&BIN_MAGIC);
    file.extend_from_slice(&(header_bytes.len() as u32).to_le_bytes());
    file.extend_from_slice(&header_bytes);
    file.extend_from_slice(&region);
    let payload_bytes = region.len() as u64;
    (file, payload_bytes, 1 + chunks.len() as u32)
}

/// A validated, open binary artifact whose row chunks decode on
/// demand. Produced by [`ArtifactStore::open_chunked`]; every chunk's
/// checksum was verified at open time, so reads fail only on
/// filesystem races. Cheap to keep around: it holds the chunk index,
/// not the payload.
#[derive(Debug, Clone)]
pub struct ChunkedPayload {
    path: PathBuf,
    chunk_base: u64,
    meta: ChunkInfo,
    chunks: Vec<ChunkInfo>,
}

impl ChunkedPayload {
    /// Opens `path` and validates it end to end against the manifest's
    /// expectations: magic, readable schema version, stage name,
    /// fingerprint, and the checksum of every chunk (bytes are read
    /// once and hashed, never decoded).
    fn open(path: &Path, stage: &str, fingerprint: &str) -> Result<ChunkedPayload, StoreError> {
        use std::io::Read;
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.display().to_string(),
            detail,
        };
        let mut file = std::fs::File::open(path).map_err(|e| io_err(path, &e))?;
        let mut prefix = [0u8; 8];
        file.read_exact(&mut prefix)
            .map_err(|e| corrupt(format!("file shorter than its fixed prefix: {e}")))?;
        if prefix[..4] != BIN_MAGIC {
            return Err(corrupt(format!(
                "bad magic {:02x?} (not a binary artifact)",
                &prefix[..4]
            )));
        }
        let header_len = u32::from_le_bytes(prefix[4..8].try_into().expect("4 bytes")) as usize;
        let mut header_bytes = vec![0u8; header_len];
        file.read_exact(&mut header_bytes)
            .map_err(|e| corrupt(format!("truncated header: {e}")))?;
        let header = binfmt::decode_one(&header_bytes)
            .map_err(|e| corrupt(format!("header does not decode: {e}")))?;
        let map = match &header {
            Value::Object(map) => map,
            _ => return Err(corrupt("header is not an object".to_owned())),
        };
        let schema = map
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt("header missing schema_version".to_owned()))?;
        let schema = u32::try_from(schema).unwrap_or(u32::MAX);
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(StoreError::SchemaMismatch {
                path: path.display().to_string(),
                found: schema,
            });
        }
        let header_stage = map.get("stage").and_then(Value::as_str).unwrap_or("");
        let header_fp = map.get("fingerprint").and_then(Value::as_str).unwrap_or("");
        if header_stage != stage || header_fp != fingerprint {
            return Err(corrupt(format!(
                "header says stage {header_stage} fingerprint {header_fp}, manifest says stage \
                 {stage} fingerprint {fingerprint}"
            )));
        }
        let meta = ChunkInfo::from_value(
            map.get("meta")
                .ok_or_else(|| corrupt("header missing meta chunk".to_owned()))?,
        )
        .map_err(&corrupt)?;
        let chunks: Vec<ChunkInfo> = map
            .get("chunks")
            .and_then(Value::as_array)
            .ok_or_else(|| corrupt("header missing chunk index".to_owned()))?
            .iter()
            .map(ChunkInfo::from_value)
            .collect::<Result<_, _>>()
            .map_err(&corrupt)?;
        let payload = ChunkedPayload {
            path: path.to_path_buf(),
            chunk_base: 8 + header_len as u64,
            meta,
            chunks,
        };
        // Eager integrity pass: read (not decode) every chunk once and
        // verify its checksum, so a bit-flipped or truncated chunk is
        // rejected at open — the same failure point as a JSON parse
        // error — rather than mid-analysis.
        payload.read_chunk_bytes(&payload.meta)?;
        for chunk in &payload.chunks {
            payload.read_chunk_bytes(chunk)?;
        }
        Ok(payload)
    }

    /// Total chunk count (meta + row chunks).
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        1 + self.chunks.len()
    }

    /// The domains of a row section, in chunk (= first-seen) order.
    #[must_use]
    pub fn chunk_names(&self, section: &str) -> Vec<&str> {
        self.chunks
            .iter()
            .filter(|c| c.section == section)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Reads and verifies one chunk's raw bytes.
    fn read_chunk_bytes(&self, chunk: &ChunkInfo) -> Result<Vec<u8>, StoreError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::File::open(&self.path).map_err(|e| io_err(&self.path, &e))?;
        file.seek(SeekFrom::Start(self.chunk_base + chunk.offset))
            .map_err(|e| io_err(&self.path, &e))?;
        let len = usize::try_from(chunk.len).map_err(|_| StoreError::Corrupt {
            path: self.path.display().to_string(),
            detail: format!("chunk length {} overflows", chunk.len),
        })?;
        let mut bytes = vec![0u8; len];
        file.read_exact(&mut bytes)
            .map_err(|e| StoreError::Corrupt {
                path: self.path.display().to_string(),
                detail: format!(
                    "chunk {}/{} truncated at offset {}: {e}",
                    chunk.section, chunk.name, chunk.offset
                ),
            })?;
        if fnv1a64(&bytes) != chunk.checksum {
            return Err(StoreError::Corrupt {
                path: self.path.display().to_string(),
                detail: format!(
                    "chunk {}/{} fails its checksum (expected {:016x})",
                    chunk.section, chunk.name, chunk.checksum
                ),
            });
        }
        Ok(bytes)
    }

    /// Decodes the meta chunk: the payload tree with every row array
    /// empty (stores deserialize with zero records, stats and cleaning
    /// metadata intact).
    pub(crate) fn meta_value(&self) -> Result<Value, StoreError> {
        let bytes = self.read_chunk_bytes(&self.meta)?;
        binfmt::decode_one(&bytes).map_err(|e| StoreError::Corrupt {
            path: self.path.display().to_string(),
            detail: format!("meta chunk does not decode: {e}"),
        })
    }

    /// Decodes one domain's chunk into `(original row index, row)`
    /// pairs. This is the single-domain streamed read: nothing outside
    /// the chunk is touched.
    pub fn read_chunk(&self, section: &str, name: &str) -> Result<Vec<(u64, Value)>, StoreError> {
        let chunk = self
            .chunks
            .iter()
            .find(|c| c.section == section && c.name == name)
            .ok_or_else(|| StoreError::Corrupt {
                path: self.path.display().to_string(),
                detail: format!("no chunk {section}/{name} in the index"),
            })?;
        let bytes = self.read_chunk_bytes(chunk)?;
        binfmt::decode_rows(&bytes).map_err(|e| StoreError::Corrupt {
            path: self.path.display().to_string(),
            detail: format!("chunk {section}/{name} does not decode: {e}"),
        })
    }

    /// Decodes one domain's chunk and deserializes every row to `T`
    /// (row order inside a chunk is original store order, so the
    /// result needs no re-sorting).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the chunk is missing from the
    /// index, fails to decode, or a row does not deserialize.
    pub fn read_chunk_rows<T: Deserialize>(
        &self,
        section: &str,
        name: &str,
    ) -> Result<Vec<T>, StoreError> {
        self.read_chunk(section, name)?
            .iter()
            .map(|(_, row)| {
                T::deserialize(row).map_err(|e| StoreError::Corrupt {
                    path: self.path.display().to_string(),
                    detail: format!("chunk {section}/{name} row does not deserialize: {e}"),
                })
            })
            .collect()
    }

    /// Reassembles the full payload tree: the meta chunk with every
    /// section's rows spliced back into their original positions.
    pub(crate) fn assemble_value(&self) -> Result<Value, StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            path: self.path.display().to_string(),
            detail,
        };
        let mut payload = self.meta_value()?;
        let sections: Vec<&str> = {
            let mut seen = Vec::new();
            for c in &self.chunks {
                if !seen.contains(&c.section.as_str()) {
                    seen.push(c.section.as_str());
                }
            }
            seen
        };
        for section in sections {
            let mut collected: Vec<(u64, Value)> = Vec::new();
            for name in self.chunk_names(section) {
                collected.extend(self.read_chunk(section, name)?);
            }
            let total = collected.len();
            let mut slots: Vec<Option<Value>> =
                std::iter::repeat_with(|| None).take(total).collect();
            for (index, row) in collected {
                let slot = usize::try_from(index)
                    .ok()
                    .and_then(|i| slots.get_mut(i))
                    .ok_or_else(|| {
                        corrupt(format!(
                            "section {section}: row index {index} out of range 0..{total}"
                        ))
                    })?;
                if slot.is_some() {
                    return Err(corrupt(format!(
                        "section {section}: duplicate row index {index}"
                    )));
                }
                *slot = Some(row);
            }
            let rows: Vec<Value> = slots
                .into_iter()
                .collect::<Option<_>>()
                .ok_or_else(|| corrupt(format!("section {section}: missing row index")))?;
            let path = section_path(&payload, section).ok_or_else(|| {
                corrupt(format!(
                    "section {section} has no row array in the meta payload"
                ))
            })?;
            let slot = rows_slot(&mut payload, path).ok_or_else(|| {
                corrupt(format!(
                    "section {section} has no row array in the meta payload"
                ))
            })?;
            *slot = rows;
        }
        Ok(payload)
    }

    /// Reassembles and deserializes the full artifact (the non-chunked
    /// load path for binary entries).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when a chunk fails to decode or the
    /// payload does not deserialize; [`StoreError::Io`] on read races.
    pub fn assemble<T: Deserialize>(&self) -> Result<T, StoreError> {
        let payload = self.assemble_value()?;
        serde_json::from_value(payload).map_err(|e| StoreError::Corrupt {
            path: self.path.display().to_string(),
            detail: format!("payload does not deserialize: {e}"),
        })
    }
}

/// Finds the row-array path for a section by probing the known stage
/// layouts against the payload shape (the stage name is not stored in
/// the chunk index, so reassembly matches on structure).
fn section_path(payload: &Value, section: &str) -> Option<&'static [&'static str]> {
    for stage in ["crowd", "crawl"] {
        for (s, path) in row_sections(stage) {
            if *s != section {
                continue;
            }
            // The path must exist in this payload to be the right one.
            let mut cur = payload;
            let mut ok = true;
            for key in *path {
                match cur {
                    Value::Object(map) => match map.get(*key) {
                        Some(next) => cur = next,
                        None => {
                            ok = false;
                            break;
                        }
                    },
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && matches!(cur, Value::Array(_)) {
                return Some(path);
            }
        }
    }
    None
}

/// Writes via a unique sibling temp file, fsync and rename, so a crash
/// mid-write never leaves a truncated artifact behind a valid-looking
/// name — the data hits the disk before the name does, and the parent
/// directory is fsynced after the rename so the name itself survives a
/// crash. The temp name embeds the pid and a process-wide counter, so
/// concurrent savers (threads or processes sharing one store dir) each
/// write their own temp file and can never publish another writer's
/// partial bytes.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    use std::io::Write;
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = path.with_file_name(format!(".{name}.{}.{seq}.tmp", std::process::id()));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
        file.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
        file.sync_all().map_err(|e| io_err(&tmp, &e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, &e))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // The rename is durable only once the directory entry is synced;
    // opening a directory read-only for fsync works on the Unix
    // platforms we support, and a platform that refuses the open keeps
    // the old (rename-only) guarantee rather than failing the save.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            dir.sync_all().map_err(|e| io_err(parent, &e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::CrawlArtifact;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pd-store-unit-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn smoke_plan(seed: u64) -> RunPlan {
        RunPlan::new(ExperimentConfig::smoke(seed))
    }

    #[test]
    fn fingerprints_are_stable_and_seed_sensitive() {
        let a = crowd_fingerprint(&smoke_plan(7));
        let b = crowd_fingerprint(&smoke_plan(7));
        let c = crowd_fingerprint(&smoke_plan(8));
        assert_eq!(a, b, "same plan, same fingerprint");
        assert_ne!(a, c, "seed change must invalidate");
        assert_ne!(
            crowd_fingerprint(&smoke_plan(7)),
            crawl_fingerprint(&smoke_plan(7)),
            "stage name is part of the fingerprint"
        );
    }

    #[test]
    fn plan_knobs_invalidate_measurement_fingerprints() {
        let base = smoke_plan(7);
        let mut no_clean = base.clone();
        no_clean.cleaning = false;
        assert_ne!(crowd_fingerprint(&base), crowd_fingerprint(&no_clean));
        let mut skewed = base.clone();
        skewed.desync = pd_net::clock::SimDuration::from_mins(25);
        assert_ne!(crawl_fingerprint(&base), crawl_fingerprint(&skewed));
        let mut subset = base.clone();
        subset.vantage_labels = Some(vec!["USA - Boston".to_owned()]);
        assert_ne!(personas_fingerprint(&base), personas_fingerprint(&subset));
    }

    #[test]
    fn analysis_knobs_spare_measurement_but_change_analysis() {
        let base = smoke_plan(7);
        let mut refigured = base.clone();
        refigured.config.analysis.fig1_domains = 10;
        assert_eq!(
            crowd_fingerprint(&base),
            crowd_fingerprint(&refigured),
            "figure parameters must not invalidate measurements"
        );
        assert_eq!(crawl_fingerprint(&base), crawl_fingerprint(&refigured));
        assert_ne!(
            analysis_fingerprint(&base),
            analysis_fingerprint(&refigured),
            "the analysis artifact does depend on its knobs"
        );
    }

    #[test]
    fn fingerprint_hex_round_trips() {
        let fp = crowd_fingerprint(&smoke_plan(1));
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("nope"), None);
        assert_eq!(Fingerprint::parse(""), None);
    }

    #[test]
    fn save_load_round_trips_and_rejects_other_plans() {
        let dir = tmp_dir("round-trip");
        let plan = smoke_plan(7);
        let mut store = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");
        let art = CrawlArtifact {
            store: pd_sheriff::MeasurementStore::new(),
            stats: vec![],
        };
        let fp = crawl_fingerprint(&plan);
        store.save("crawl", fp, &[], &art).expect("save");

        let reopened = ArtifactStore::open(&dir).expect("open");
        let back: CrawlArtifact = reopened.load("crawl", fp).expect("load");
        assert_eq!(back.store.len(), 0);
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crowd", fp),
            Err(StoreError::MissingStage { .. })
        ));
        let other = crawl_fingerprint(&smoke_plan(8));
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crawl", other),
            Err(StoreError::StaleFingerprint { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_renamed_files_are_rejected() {
        let dir = tmp_dir("corrupt");
        let plan = smoke_plan(7);
        let mut store = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");
        let art = CrawlArtifact {
            store: pd_sheriff::MeasurementStore::new(),
            stats: vec![],
        };
        let fp = crawl_fingerprint(&plan);
        store.save("crawl", fp, &[], &art).expect("save");

        // Truncate the artifact file: load must fail, verify must flag it.
        std::fs::write(dir.join("crawl.json"), b"{ not json").expect("scribble");
        let reopened = ArtifactStore::open(&dir).expect("open");
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crawl", fp),
            Err(StoreError::Corrupt { .. })
        ));
        let verified = reopened.verify();
        assert_eq!(verified.len(), 1);
        assert!(matches!(verified[0].1, EntryHealth::Corrupt(_)));

        // A file renamed over another stage's slot fails the envelope
        // check even though the name looks right.
        store.save("crawl", fp, &[], &art).expect("re-save");
        let crowd_fp = crowd_fingerprint(&plan);
        store
            .save("crowd", crowd_fp, &[], &art)
            .expect("save crowd");
        std::fs::copy(dir.join("crawl.json"), dir.join("crowd.json")).expect("swap");
        let reopened = ArtifactStore::open(&dir).expect("open");
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crowd", crowd_fp),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_records_provenance_and_plan() {
        let dir = tmp_dir("manifest");
        let plan = smoke_plan(9);
        let store = ArtifactStore::create(
            &dir,
            Provenance::new("paper", "arm-1", "medium", 9, 4),
            &plan,
            None,
        )
        .expect("create");
        let m = ArtifactStore::open(&dir).expect("open").manifest().clone();
        assert_eq!(m.schema_version, SCHEMA_VERSION);
        assert_eq!(m.provenance.scenario, "paper");
        assert_eq!(m.provenance.label, "arm-1");
        assert_eq!(m.provenance.threads, 4);
        assert_eq!(m.plan.config.seed.value(), 9);
        assert_eq!(m.plan.to_plan().config, plan.config);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_records_the_producing_spec() {
        let dir = tmp_dir("spec-record");
        let plan = smoke_plan(3);
        let spec = crate::spec::builtin_specs()
            .into_iter()
            .find(|s| s.name == "failure-sweep")
            .expect("builtin");
        ArtifactStore::create(
            &dir,
            Provenance::new("failure-sweep", "fail-0", "smoke", 3, 1),
            &plan,
            Some(spec.clone()),
        )
        .expect("create");
        let m = ArtifactStore::open(&dir).expect("open").manifest().clone();
        let recorded = m.spec.expect("spec recorded");
        assert_eq!(recorded, spec, "spec must round-trip through the manifest");
        assert_eq!(recorded.fingerprint(), spec.fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A deterministic measurement for payload-shape tests (the
    /// integration suite randomizes; here we exercise the encoding).
    fn measurement(i: u64, domain: &str) -> pd_sheriff::measurement::Measurement {
        use pd_currency::{Currency, Price};
        use pd_sheriff::measurement::{Measurement, NoiseTruth, PriceObservation};
        use pd_util::{Money, RequestId, UserId, VantageId};
        #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
        let price = Price::new(
            Money::from_minor(1000 + i as i64),
            Currency::ALL[(i as usize) % Currency::ALL.len()],
        );
        Measurement {
            request: RequestId::new(0),
            user: UserId::new((i % 7) as u32),
            domain: domain.to_owned(),
            product_slug: format!("prod-{}", i % 3),
            time: pd_net::clock::SimTime::from_millis(1000 * i),
            user_price: Some(price),
            observations: (0..3)
                .map(|v| {
                    PriceObservation::ok(VantageId::new(v), price, format!("{} x", price.amount))
                })
                .collect(),
            noise_truth: NoiseTruth::Clean,
        }
    }

    fn crawl_artifact(domains: &[&str], per_domain: u64) -> CrawlArtifact {
        let mut store = pd_sheriff::MeasurementStore::new();
        for d in domains {
            for i in 0..per_domain {
                store.push(measurement(i, d));
            }
        }
        CrawlArtifact {
            store,
            stats: vec![],
        }
    }

    #[test]
    fn binary_round_trip_matches_json_and_is_smaller() {
        let dir_json = tmp_dir("bin-vs-json-j");
        let dir_bin = tmp_dir("bin-vs-json-b");
        let plan = smoke_plan(7);
        let fp = crawl_fingerprint(&plan);
        let art = crawl_artifact(&["a.example", "b.example", "c.example"], 40);
        let prov = || Provenance::new("smoke", "", "smoke", 7, 1);

        let mut js = ArtifactStore::create(&dir_json, prov(), &plan, None).expect("create");
        let json_bytes = js.save("crawl", fp, &[], &art).expect("json save");

        let mut bs = ArtifactStore::create(&dir_bin, prov(), &plan, None).expect("create");
        bs.set_format(StoreFormat::Binary);
        let bin_bytes = bs.save("crawl", fp, &[], &art).expect("binary save");
        assert!(dir_bin.join("crawl.bin").is_file());
        assert!(
            bin_bytes * 3 <= json_bytes,
            "binary ({bin_bytes} B) must be ≤ 1/3 of JSON ({json_bytes} B)"
        );

        let from_json: CrawlArtifact = ArtifactStore::open(&dir_json)
            .expect("open")
            .load("crawl", fp)
            .expect("json load");
        let from_bin: CrawlArtifact = ArtifactStore::open(&dir_bin)
            .expect("open")
            .load("crawl", fp)
            .expect("binary load");
        assert_eq!(
            serde_json::to_string(&serde_json::to_value(&from_json)),
            serde_json::to_string(&serde_json::to_value(&from_bin)),
            "the two formats must load identical artifacts"
        );
        assert_eq!(from_bin.store.len(), art.store.len());
        assert_eq!(from_bin.store.records(), art.store.records());

        let entry = bs.entry("crawl").expect("entry").clone();
        assert_eq!(entry.store_format(), StoreFormat::Binary);
        assert_eq!(entry.chunks, Some(4), "meta + one chunk per domain");
        std::fs::remove_dir_all(&dir_json).ok();
        std::fs::remove_dir_all(&dir_bin).ok();
    }

    #[test]
    fn chunked_open_reads_single_domains() {
        let dir = tmp_dir("chunked-read");
        let plan = smoke_plan(7);
        let fp = crawl_fingerprint(&plan);
        let domains = ["x.example", "y.example", "z.example"];
        let art = crawl_artifact(&domains, 5);
        let mut store = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");
        store.set_format(StoreFormat::Binary);
        store.save("crawl", fp, &[], &art).expect("save");

        let chunked = store.open_chunked("crawl", fp).expect("open chunked");
        assert_eq!(chunked.chunk_count(), 4);
        assert_eq!(chunked.chunk_names("store"), domains.to_vec());
        let rows = chunked.read_chunk("store", "y.example").expect("chunk");
        assert_eq!(rows.len(), 5);
        // The recorded indices are the rows' positions in the original
        // store (domain y holds positions 5..10).
        let indices: Vec<u64> = rows.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![5, 6, 7, 8, 9]);
        for (_, row) in &rows {
            let domain = match row {
                Value::Object(m) => m.get("domain").and_then(Value::as_str),
                _ => None,
            };
            assert_eq!(domain, Some("y.example"));
        }
        let back: CrawlArtifact = chunked.assemble().expect("assemble");
        assert_eq!(back.store.records(), art.store.records());

        assert!(matches!(
            chunked.read_chunk("store", "missing.example"),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            store.open_chunked("crawl", crawl_fingerprint(&smoke_plan(8))),
            Err(StoreError::StaleFingerprint { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_binary_chunks_are_rejected_at_open() {
        let dir = tmp_dir("bin-corrupt");
        let plan = smoke_plan(7);
        let fp = crawl_fingerprint(&plan);
        let mut store = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");
        store.set_format(StoreFormat::Binary);
        store
            .save(
                "crawl",
                fp,
                &[],
                &crawl_artifact(&["a.example", "b.example"], 10),
            )
            .expect("save");

        // Flip one byte near the end of the file (inside the last row
        // chunk): the open-time checksum pass must reject it.
        let path = dir.join("crawl.bin");
        let mut bytes = std::fs::read(&path).expect("read");
        let at = bytes.len() - 8;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).expect("scribble");

        let reopened = ArtifactStore::open(&dir).expect("open");
        assert!(matches!(
            reopened.open_chunked("crawl", fp),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crawl", fp),
            Err(StoreError::Corrupt { .. })
        ));
        let verified = reopened.verify();
        assert_eq!(verified.len(), 1);
        assert!(matches!(verified[0].1, EntryHealth::Corrupt(_)));

        // Truncation is caught too.
        bytes[at] ^= 0x40; // restore the flipped byte
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).expect("truncate");
        assert!(matches!(
            reopened.open_chunked("crawl", fp),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn migrate_round_trips_byte_identically() {
        let dir = tmp_dir("migrate");
        let plan = smoke_plan(7);
        let fp = crawl_fingerprint(&plan);
        let mut store = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");
        store
            .save(
                "crawl",
                fp,
                &[],
                &crawl_artifact(&["m.example", "n.example"], 12),
            )
            .expect("save");
        let original = std::fs::read(dir.join("crawl.json")).expect("json bytes");

        let mut store = ArtifactStore::open(&dir).expect("open");
        let report = store.migrate(StoreFormat::Binary).expect("to binary");
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].0, "crawl");
        assert_eq!(report[0].1, original.len() as u64);
        assert!(report[0].2 < report[0].1, "binary must shrink the store");
        assert!(dir.join("crawl.bin").is_file());
        assert!(
            !dir.join("crawl.json").exists(),
            "the superseded JSON file must be removed"
        );
        // The fingerprint is untouched, so the entry still loads.
        let art: CrawlArtifact = store.load("crawl", fp).expect("load after migrate");
        assert_eq!(art.store.len(), 24);

        let report = store.migrate(StoreFormat::Json).expect("back to json");
        let restored = std::fs::read(dir.join("crawl.json")).expect("json bytes");
        assert_eq!(report[0].2, restored.len() as u64);
        assert_eq!(
            original, restored,
            "json → binary → json must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_saves_never_publish_partial_bytes() {
        let dir = tmp_dir("concurrent-save");
        let plan = smoke_plan(7);
        let fp = crawl_fingerprint(&plan);
        ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");

        // Eight threads, each with its own handle on the same dir,
        // hammer the same stage with payloads of very different sizes.
        // Before the unique-temp-name fix the writers shared one
        // `crawl.json.tmp` and could rename each other's half-written
        // bytes into place.
        let sizes: Vec<u64> = (0..8).map(|i| 5 + 40 * i).collect();
        let threads: Vec<_> = sizes
            .iter()
            .map(|&n| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let mut store = ArtifactStore::open(&dir).expect("open");
                    let art = crawl_artifact(&["c1.example", "c2.example"], n);
                    for _ in 0..4 {
                        store.save("crawl", fp, &[], &art).expect("save");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no saver panics");
        }

        // Whatever interleaving happened, the published file must be a
        // complete, valid envelope holding one of the variants...
        let reopened = ArtifactStore::open(&dir).expect("manifest parses");
        let art: CrawlArtifact = reopened.load("crawl", fp).expect("envelope parses");
        let len = art.store.len() as u64;
        assert!(
            sizes.iter().any(|&n| 2 * n == len),
            "loaded store holds {len} records, not one of the written variants"
        );
        // ...and no temp droppings survive.
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_json_stores_still_load() {
        let dir = tmp_dir("v2-compat");
        let plan = smoke_plan(7);
        let fp = crawl_fingerprint(&plan);
        let art = crawl_artifact(&["old.example"], 6);

        // Write the store with this build, then rewrite both files the
        // way a v2 build laid them down: schema_version 2 and no
        // format/chunks keys in the manifest entry.
        let mut store = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");
        store.save("crawl", fp, &[], &art).expect("save");

        let downgrade = |v: &mut Value| {
            if let Value::Object(map) = v {
                map.insert("schema_version".to_owned(), Value::UInt(2));
            }
        };
        let envelope_path = dir.join("crawl.json");
        let mut envelope: Value =
            serde_json::from_str(&std::fs::read_to_string(&envelope_path).expect("read"))
                .expect("parse");
        downgrade(&mut envelope);
        std::fs::write(
            &envelope_path,
            serde_json::to_string(&envelope).expect("render"),
        )
        .expect("write");
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest: Value =
            serde_json::from_str(&std::fs::read_to_string(&manifest_path).expect("read"))
                .expect("parse");
        downgrade(&mut manifest);
        if let Value::Object(map) = &mut manifest {
            if let Some(Value::Array(entries)) = map.get_mut("entries") {
                for entry in entries {
                    if let Value::Object(entry) = entry {
                        entry.remove("format");
                        entry.remove("chunks");
                    }
                }
            }
        }
        std::fs::write(
            &manifest_path,
            serde_json::to_string_pretty(&manifest).expect("render"),
        )
        .expect("write");

        // The v2 store opens, reports JSON format, and loads — the
        // fingerprint basis did not move with the container version.
        let reopened = ArtifactStore::open(&dir).expect("v2 store opens");
        assert_eq!(reopened.manifest().schema_version, 2);
        let entry = reopened.entry("crawl").expect("entry");
        assert_eq!(entry.store_format(), StoreFormat::Json);
        let back: CrawlArtifact = reopened.load("crawl", fp).expect("v2 artifact loads");
        assert_eq!(back.store.records(), art.store.records());

        // Saving anything upgrades the container to the current version.
        let mut reopened = reopened;
        reopened.save("crawl", fp, &[], &art).expect("re-save");
        assert_eq!(reopened.manifest().schema_version, SCHEMA_VERSION);
        assert_eq!(
            ArtifactStore::open(&dir)
                .expect("reopen")
                .manifest()
                .schema_version,
            SCHEMA_VERSION
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_non_stores_and_future_schemas() {
        let dir = tmp_dir("no-manifest");
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(matches!(
            ArtifactStore::open(&dir),
            Err(StoreError::NoManifest { .. })
        ));
        std::fs::write(dir.join(MANIFEST_FILE), b"]]").expect("write");
        assert!(matches!(
            ArtifactStore::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
