//! The on-disk artifact store: crawl once, re-analyze forever.
//!
//! The paper's methodology is "measure once, analyze many ways": one
//! months-long crowd + crawl dataset feeds every figure of the
//! evaluation. This module gives the engine the same property across
//! process lifetimes. Each stage artifact ([`crate::CrowdArtifact`],
//! [`crate::CrawlArtifact`], [`crate::PersonaArtifact`],
//! [`crate::AnalysisArtifact`]) is written as versioned JSON under a
//! directory, and a `manifest.json` records provenance: which scenario
//! produced it, at which seed, profile and thread count, under which
//! [`RunPlan`], and with which upstream fingerprints.
//!
//! ## Fingerprints, not file names
//!
//! An artifact is only ever trusted if its **fingerprint** matches the
//! plan asking for it. A [`Fingerprint`] is a stable 64-bit FNV-1a hash
//! over the canonical JSON of everything the producing stage depends on:
//! the schema version, the stage name, the [`ExperimentConfig`] (minus
//! the analysis-only section for measurement stages), and the plan's
//! engine knobs (desync skew, cleaning, vantage subset). The analysis
//! fingerprint additionally chains the three upstream measurement
//! fingerprints. File names are just locators; a renamed, stale or
//! hand-edited file fails its fingerprint check and the stage recomputes.
//!
//! Because measurement fingerprints exclude [`ExperimentConfig::analysis`],
//! a stored crawl stays valid when only figure parameters change — which
//! is exactly what `pd rerun` exploits to re-analyze without re-measuring.
//!
//! ## Example
//!
//! ```
//! use pd_core::store::{self, ArtifactStore, Provenance};
//! use pd_core::{CrawlArtifact, RunPlan, ExperimentConfig, StageKind};
//!
//! let dir = std::env::temp_dir().join(format!("pd-store-doc-{}", std::process::id()));
//! let plan = RunPlan::new(ExperimentConfig::smoke(7));
//! let mut s = ArtifactStore::create(&dir, Provenance::new("smoke", "", "smoke", 7, 1), &plan, None)
//!     .expect("store creates");
//!
//! // Save an (empty) crawl artifact under its plan fingerprint...
//! let fp = store::crawl_fingerprint(&plan);
//! let art = CrawlArtifact { store: pd_sheriff::MeasurementStore::new(), stats: vec![] };
//! s.save(StageKind::Crawl.as_str(), fp, &[], &art).expect("saves");
//!
//! // ...and it only loads back under the *same* plan.
//! let reopened = ArtifactStore::open(&dir).expect("store opens");
//! assert!(reopened.load::<CrawlArtifact>("crawl", fp).is_ok());
//! let other = store::crawl_fingerprint(&RunPlan::new(ExperimentConfig::smoke(8)));
//! assert!(reopened.load::<CrawlArtifact>("crawl", other).is_err());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::config::ExperimentConfig;
use crate::observer::StageKind;
use crate::scenario::RunPlan;
use crate::spec::ScenarioSpec;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// On-disk schema version. Bump whenever an artifact's serialized shape
/// changes; every envelope and manifest records it, and a mismatch is a
/// hard rejection (never a silent misparse).
///
/// v2: `ExperimentConfig` grew the `world` section (failure injection),
/// `RunPlan` grew `targets_from_crowd`, and the manifest records the
/// producing [`ScenarioSpec`].
pub const SCHEMA_VERSION: u32 = 2;

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// A stable 64-bit digest of everything a stage's output depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The raw 64-bit digest.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit form produced by [`Display`](fmt::Display).
    #[must_use]
    pub fn parse(s: &str) -> Option<Fingerprint> {
        (s.len() == 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
            .map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a over a byte string (the same construction the vendored
/// proptest uses for test seeds; stable across platforms and runs).
/// Also the digest behind [`ScenarioSpec::fingerprint`].
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The canonical fingerprint basis of a plan: config (optionally with
/// the analysis-only section removed), engine knobs, schema version.
fn basis_value(plan: &RunPlan, include_analysis: bool) -> Value {
    let mut config = serde_json::to_value(&plan.config);
    if !include_analysis {
        if let Value::Object(map) = &mut config {
            map.remove("analysis");
        }
    }
    let mut m = serde::Map::new();
    m.insert("schema".to_owned(), serde_json::to_value(&SCHEMA_VERSION));
    m.insert("config".to_owned(), config);
    m.insert(
        "desync_ms".to_owned(),
        serde_json::to_value(&plan.desync.as_millis()),
    );
    m.insert("cleaning".to_owned(), serde_json::to_value(&plan.cleaning));
    m.insert(
        "vantage_labels".to_owned(),
        serde_json::to_value(&plan.vantage_labels),
    );
    m.insert(
        "targets_from_crowd".to_owned(),
        serde_json::to_value(&plan.targets_from_crowd),
    );
    Value::Object(m)
}

fn fingerprint_of(stage: &str, basis: &Value, upstream: &[Fingerprint]) -> Fingerprint {
    let mut m = serde::Map::new();
    m.insert("stage".to_owned(), Value::String(stage.to_owned()));
    m.insert("basis".to_owned(), basis.clone());
    m.insert(
        "upstream".to_owned(),
        Value::Array(
            upstream
                .iter()
                .map(|fp| Value::String(fp.to_string()))
                .collect(),
        ),
    );
    let text = serde_json::to_string(&Value::Object(m)).expect("value serializes");
    Fingerprint(fnv1a64(text.as_bytes()))
}

/// The crowd-stage fingerprint of a plan.
///
/// Measurement fingerprints are deliberately conservative: they cover
/// the full configuration except the analysis-only section, so any
/// change that *could* reshape the measured world invalidates the
/// artifact, while figure-parameter changes never do.
#[must_use]
pub fn crowd_fingerprint(plan: &RunPlan) -> Fingerprint {
    fingerprint_of(StageKind::Crowd.as_str(), &basis_value(plan, false), &[])
}

/// The crawl-stage fingerprint of a plan (same conservative basis).
#[must_use]
pub fn crawl_fingerprint(plan: &RunPlan) -> Fingerprint {
    fingerprint_of(StageKind::Crawl.as_str(), &basis_value(plan, false), &[])
}

/// The persona-stage fingerprint of a plan (same conservative basis).
#[must_use]
pub fn personas_fingerprint(plan: &RunPlan) -> Fingerprint {
    fingerprint_of(StageKind::Personas.as_str(), &basis_value(plan, false), &[])
}

/// The analysis fingerprint: the full config (including the analysis
/// knobs) chained with the three upstream measurement fingerprints.
#[must_use]
pub fn analysis_fingerprint(plan: &RunPlan) -> Fingerprint {
    let upstream = [
        crowd_fingerprint(plan),
        crawl_fingerprint(plan),
        personas_fingerprint(plan),
    ];
    fingerprint_of(
        StageKind::Analysis.as_str(),
        &basis_value(plan, true),
        &upstream,
    )
}

/// The fingerprint of a measurement stage, by kind. Returns `None` for
/// stages the store does not persist standalone ([`StageKind::Build`])
/// or whose fingerprint chains upstreams ([`StageKind::Analysis`] — use
/// [`analysis_fingerprint`]).
#[must_use]
pub fn measurement_fingerprint(stage: StageKind, plan: &RunPlan) -> Option<Fingerprint> {
    match stage {
        StageKind::Crowd => Some(crowd_fingerprint(plan)),
        StageKind::Crawl => Some(crawl_fingerprint(plan)),
        StageKind::Personas => Some(personas_fingerprint(plan)),
        StageKind::Build | StageKind::Analysis => None,
    }
}

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (create, read, write, rename).
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// The directory has no `manifest.json` — it is not an artifact store.
    NoManifest {
        /// The directory probed.
        dir: String,
    },
    /// A file exists but cannot be parsed, or contradicts the manifest.
    Corrupt {
        /// The offending file.
        path: String,
        /// What went wrong.
        detail: String,
    },
    /// The file was written by a different on-disk schema version.
    SchemaMismatch {
        /// The offending file.
        path: String,
        /// The version found on disk (ours is [`SCHEMA_VERSION`]).
        found: u32,
    },
    /// The stored artifact's fingerprint does not match the requesting
    /// plan — the artifact was produced under a different configuration.
    StaleFingerprint {
        /// The stage asked for.
        stage: String,
        /// The fingerprint the current plan requires.
        expected: String,
        /// The fingerprint found in the store.
        found: String,
    },
    /// The manifest has no entry for the requested stage.
    MissingStage {
        /// The stage asked for.
        stage: String,
    },
    /// The directory already holds artifacts produced by a different
    /// run plan; writing would destroy them, so the save refuses.
    PlanMismatch {
        /// The store directory.
        dir: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "artifact store I/O on {path}: {detail}"),
            StoreError::NoManifest { dir } => {
                write!(f, "{dir} is not an artifact store (no {MANIFEST_FILE})")
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt artifact file {path}: {detail}")
            }
            StoreError::SchemaMismatch { path, found } => write!(
                f,
                "{path} uses on-disk schema v{found}, this build reads v{SCHEMA_VERSION}"
            ),
            StoreError::StaleFingerprint {
                stage,
                expected,
                found,
            } => write!(
                f,
                "stale {stage} artifact: plan requires fingerprint {expected}, store has {found}"
            ),
            StoreError::MissingStage { stage } => {
                write!(f, "artifact store has no {stage} artifact")
            }
            StoreError::PlanMismatch { dir } => write!(
                f,
                "{dir} holds artifacts from a different run plan; refusing to overwrite \
                 (inspect with `pd artifacts ls {dir}`, or choose another directory)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Who produced a store: the scenario, variant label, profile, seed and
/// thread count of the run (descriptive only — the fingerprints, not the
/// provenance, decide reuse).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Registry name of the scenario (`"custom"` for raw-config runs).
    pub scenario: String,
    /// Sweep-arm label (empty for single runs).
    pub label: String,
    /// Profile flag spelling (`smoke`/`small`/`medium`/`paper`).
    pub profile: String,
    /// Root seed of the run.
    pub seed: u64,
    /// Worker threads the producing run used (reports are identical at
    /// any thread count; recorded for performance archaeology).
    pub threads: u64,
    /// Unix milliseconds when the store was created.
    pub created_unix_ms: u64,
}

impl Provenance {
    /// A provenance record stamped with the current wall-clock time.
    #[must_use]
    pub fn new(scenario: &str, label: &str, profile: &str, seed: u64, threads: usize) -> Self {
        let created_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        Provenance {
            scenario: scenario.to_owned(),
            label: label.to_owned(),
            profile: profile.to_owned(),
            seed,
            threads: threads as u64,
            created_unix_ms,
        }
    }
}

/// The serialized form of a [`RunPlan`] (the manifest must be able to
/// reconstruct the exact producing plan for `pd rerun`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRecord {
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// Fan-out desynchronization skew, in simulated milliseconds.
    pub desync_ms: u64,
    /// Whether the Sec. 3.2 cleaning pass ran.
    pub cleaning: bool,
    /// The vantage subset, if the plan restricted the fleet.
    pub vantage_labels: Option<Vec<String>>,
    /// The minimum confirmed-variation count when the plan crawled
    /// crowd-ranked targets instead of the paper's list.
    pub targets_from_crowd: Option<usize>,
}

impl PlanRecord {
    /// Records a plan.
    #[must_use]
    pub fn from_plan(plan: &RunPlan) -> Self {
        PlanRecord {
            config: plan.config.clone(),
            desync_ms: plan.desync.as_millis(),
            cleaning: plan.cleaning,
            vantage_labels: plan.vantage_labels.clone(),
            targets_from_crowd: plan.targets_from_crowd,
        }
    }

    /// Reconstructs the plan.
    #[must_use]
    pub fn to_plan(&self) -> RunPlan {
        RunPlan {
            config: self.config.clone(),
            desync: pd_net::clock::SimDuration::from_millis(self.desync_ms),
            cleaning: self.cleaning,
            vantage_labels: self.vantage_labels.clone(),
            targets_from_crowd: self.targets_from_crowd,
        }
    }
}

/// One stored artifact, as listed by the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Stage name ([`StageKind::as_str`]).
    pub stage: String,
    /// Hex fingerprint the artifact was stored under.
    pub fingerprint: String,
    /// File name inside the store directory (a locator only — the
    /// envelope's own fingerprint is what gets trusted).
    pub file: String,
    /// Serialized size in bytes.
    pub bytes: u64,
    /// Serialized size of the payload alone (the artifact body without
    /// the envelope framing — the number a compact payload encoding,
    /// the ROADMAP follow-up to the JSON store, would shrink). `None`
    /// in manifests written before this field existed.
    pub payload_bytes: Option<u64>,
    /// Hex fingerprints of the upstream artifacts this one was derived
    /// from (empty for measurement stages).
    pub upstream: Vec<String>,
}

/// The store's index: provenance, the producing plan, and every entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// On-disk schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Who produced the store.
    pub provenance: Provenance,
    /// The exact plan the artifacts were measured under.
    pub plan: PlanRecord,
    /// The declarative spec the run was lowered from, verbatim (`None`
    /// for raw-config runs built without a scenario). Descriptive like
    /// the provenance — the fingerprints decide reuse — but it makes a
    /// store reproducible from its own metadata.
    pub spec: Option<ScenarioSpec>,
    /// Stored artifacts, in save order.
    pub entries: Vec<ManifestEntry>,
}

/// The versioned wrapper around every artifact file. The payload is
/// only handed to deserialization after the schema version, stage name
/// and fingerprint all check out.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope {
    schema_version: u32,
    stage: String,
    fingerprint: String,
    payload: Value,
}

/// Health of one manifest entry, as reported by [`ArtifactStore::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryHealth {
    /// File present, envelope consistent with the manifest.
    Ok,
    /// The manifest references a file that does not exist.
    MissingFile,
    /// The file exists but is unreadable, unparsable, or contradicts
    /// the manifest (wrong stage, fingerprint or schema).
    Corrupt(String),
}

impl fmt::Display for EntryHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryHealth::Ok => f.write_str("ok"),
            EntryHealth::MissingFile => f.write_str("missing file"),
            EntryHealth::Corrupt(detail) => write!(f, "corrupt: {detail}"),
        }
    }
}

/// A directory of fingerprinted, versioned stage artifacts plus the
/// manifest indexing them. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl ArtifactStore {
    /// Does `dir` look like a store (i.e. hold a manifest)?
    #[must_use]
    pub fn is_store(dir: &Path) -> bool {
        dir.join(MANIFEST_FILE).is_file()
    }

    /// Creates (or wipes and re-creates) a store at `dir` for the given
    /// producer. The directory is created if missing; an existing
    /// manifest is replaced, and superseded stage files are overwritten
    /// lazily as stages save.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory or manifest cannot be
    /// written.
    pub fn create(
        dir: &Path,
        provenance: Provenance,
        plan: &RunPlan,
        spec: Option<ScenarioSpec>,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let store = ArtifactStore {
            dir: dir.to_path_buf(),
            manifest: Manifest {
                schema_version: SCHEMA_VERSION,
                provenance,
                plan: PlanRecord::from_plan(plan),
                spec,
                entries: Vec::new(),
            },
        };
        store.write_manifest()?;
        Ok(store)
    }

    /// Opens an existing store.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoManifest`] when `dir` has no manifest;
    /// [`StoreError::Corrupt`] when the manifest does not parse;
    /// [`StoreError::SchemaMismatch`] when it was written by a
    /// different schema version; [`StoreError::Io`] on read failure.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        if !path.is_file() {
            return Err(StoreError::NoManifest {
                dir: dir.display().to_string(),
            });
        }
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
        let manifest: Manifest = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        if manifest.schema_version != SCHEMA_VERSION {
            return Err(StoreError::SchemaMismatch {
                path: path.display().to_string(),
                found: manifest.schema_version,
            });
        }
        Ok(ArtifactStore {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest (provenance, plan, entries).
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The manifest entry for a stage, if one was saved.
    #[must_use]
    pub fn entry(&self, stage: &str) -> Option<&ManifestEntry> {
        self.manifest.entries.iter().find(|e| e.stage == stage)
    }

    /// Saves an artifact under its fingerprint, replacing any previous
    /// entry for the same stage. The file is written atomically (temp
    /// file + rename) and the manifest is updated on disk before the
    /// call returns. Returns the serialized size in bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the artifact or manifest cannot be
    /// written.
    pub fn save<T: Serialize>(
        &mut self,
        stage: &str,
        fingerprint: Fingerprint,
        upstream: &[Fingerprint],
        artifact: &T,
    ) -> Result<u64, StoreError> {
        let envelope = Envelope {
            schema_version: SCHEMA_VERSION,
            stage: stage.to_owned(),
            fingerprint: fingerprint.to_string(),
            payload: serde_json::to_value(artifact),
        };
        let text = serde_json::to_string(&envelope).expect("envelope serializes");
        // Payload size without re-serializing the payload: render the
        // same envelope around a `null` payload and subtract the
        // framing (rendering is deterministic — sorted keys, no
        // whitespace — so the framing length is exact).
        let framing = {
            let hollow = Envelope {
                payload: Value::Null,
                ..envelope
            };
            serde_json::to_string(&hollow)
                .expect("envelope serializes")
                .len()
                - "null".len()
        };
        let file = format!("{stage}.json");
        let path = self.dir.join(&file);
        write_atomic(&path, text.as_bytes())?;
        let entry = ManifestEntry {
            stage: stage.to_owned(),
            fingerprint: fingerprint.to_string(),
            file,
            bytes: text.len() as u64,
            payload_bytes: Some((text.len() - framing) as u64),
            upstream: upstream.iter().map(Fingerprint::to_string).collect(),
        };
        match self.manifest.entries.iter_mut().find(|e| e.stage == stage) {
            Some(existing) => *existing = entry,
            None => self.manifest.entries.push(entry),
        }
        self.write_manifest()?;
        Ok(text.len() as u64)
    }

    /// Loads a stage artifact, trusting nothing: the manifest must list
    /// the stage, the manifest's fingerprint and the envelope's own
    /// fingerprint must both equal `expected`, the schema version must
    /// match, and only then is the payload deserialized.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingStage`] when the manifest has no such stage;
    /// [`StoreError::StaleFingerprint`] when the stored artifact was
    /// produced under a different plan; [`StoreError::SchemaMismatch`],
    /// [`StoreError::Corrupt`] or [`StoreError::Io`] when the file is
    /// unusable.
    pub fn load<T: Deserialize>(
        &self,
        stage: &str,
        expected: Fingerprint,
    ) -> Result<T, StoreError> {
        let entry = self.entry(stage).ok_or_else(|| StoreError::MissingStage {
            stage: stage.to_owned(),
        })?;
        if entry.fingerprint != expected.to_string() {
            return Err(StoreError::StaleFingerprint {
                stage: stage.to_owned(),
                expected: expected.to_string(),
                found: entry.fingerprint.clone(),
            });
        }
        let envelope = self.read_envelope(entry)?;
        if envelope.fingerprint != expected.to_string() {
            return Err(StoreError::StaleFingerprint {
                stage: stage.to_owned(),
                expected: expected.to_string(),
                found: envelope.fingerprint,
            });
        }
        let path = self.dir.join(&entry.file);
        serde_json::from_value(envelope.payload).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            detail: format!("payload does not deserialize: {e}"),
        })
    }

    /// Checks every manifest entry against its file: existence, parse,
    /// schema version, stage and fingerprint consistency. Used by
    /// `pd artifacts ls` (payload sizes come straight off the manifest
    /// — [`ManifestEntry::payload_bytes`] is recorded at save time).
    #[must_use]
    pub fn verify(&self) -> Vec<(ManifestEntry, EntryHealth)> {
        self.manifest
            .entries
            .iter()
            .map(|entry| {
                let health = match self.read_envelope(entry) {
                    Ok(_) => EntryHealth::Ok,
                    Err(StoreError::Io { detail, .. }) if !self.dir.join(&entry.file).is_file() => {
                        let _ = detail;
                        EntryHealth::MissingFile
                    }
                    Err(e) => EntryHealth::Corrupt(e.to_string()),
                };
                (entry.clone(), health)
            })
            .collect()
    }

    /// Reads and validates an entry's envelope (schema, stage name and
    /// fingerprint must agree with the manifest), without touching the
    /// payload.
    fn read_envelope(&self, entry: &ManifestEntry) -> Result<Envelope, StoreError> {
        let path = self.dir.join(&entry.file);
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
        let envelope: Envelope = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        if envelope.schema_version != SCHEMA_VERSION {
            return Err(StoreError::SchemaMismatch {
                path: path.display().to_string(),
                found: envelope.schema_version,
            });
        }
        if envelope.stage != entry.stage || envelope.fingerprint != entry.fingerprint {
            return Err(StoreError::Corrupt {
                path: path.display().to_string(),
                detail: format!(
                    "envelope says stage {} fingerprint {}, manifest says stage {} \
                     fingerprint {}",
                    envelope.stage, envelope.fingerprint, entry.stage, entry.fingerprint
                ),
            });
        }
        Ok(envelope)
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let path = self.dir.join(MANIFEST_FILE);
        let text = serde_json::to_string_pretty(&self.manifest).expect("manifest serializes");
        write_atomic(&path, text.as_bytes())
    }
}

/// Writes via a sibling temp file + rename so a crash mid-write never
/// leaves a truncated artifact behind a valid-looking name.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::CrawlArtifact;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pd-store-unit-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn smoke_plan(seed: u64) -> RunPlan {
        RunPlan::new(ExperimentConfig::smoke(seed))
    }

    #[test]
    fn fingerprints_are_stable_and_seed_sensitive() {
        let a = crowd_fingerprint(&smoke_plan(7));
        let b = crowd_fingerprint(&smoke_plan(7));
        let c = crowd_fingerprint(&smoke_plan(8));
        assert_eq!(a, b, "same plan, same fingerprint");
        assert_ne!(a, c, "seed change must invalidate");
        assert_ne!(
            crowd_fingerprint(&smoke_plan(7)),
            crawl_fingerprint(&smoke_plan(7)),
            "stage name is part of the fingerprint"
        );
    }

    #[test]
    fn plan_knobs_invalidate_measurement_fingerprints() {
        let base = smoke_plan(7);
        let mut no_clean = base.clone();
        no_clean.cleaning = false;
        assert_ne!(crowd_fingerprint(&base), crowd_fingerprint(&no_clean));
        let mut skewed = base.clone();
        skewed.desync = pd_net::clock::SimDuration::from_mins(25);
        assert_ne!(crawl_fingerprint(&base), crawl_fingerprint(&skewed));
        let mut subset = base.clone();
        subset.vantage_labels = Some(vec!["USA - Boston".to_owned()]);
        assert_ne!(personas_fingerprint(&base), personas_fingerprint(&subset));
    }

    #[test]
    fn analysis_knobs_spare_measurement_but_change_analysis() {
        let base = smoke_plan(7);
        let mut refigured = base.clone();
        refigured.config.analysis.fig1_domains = 10;
        assert_eq!(
            crowd_fingerprint(&base),
            crowd_fingerprint(&refigured),
            "figure parameters must not invalidate measurements"
        );
        assert_eq!(crawl_fingerprint(&base), crawl_fingerprint(&refigured));
        assert_ne!(
            analysis_fingerprint(&base),
            analysis_fingerprint(&refigured),
            "the analysis artifact does depend on its knobs"
        );
    }

    #[test]
    fn fingerprint_hex_round_trips() {
        let fp = crowd_fingerprint(&smoke_plan(1));
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("nope"), None);
        assert_eq!(Fingerprint::parse(""), None);
    }

    #[test]
    fn save_load_round_trips_and_rejects_other_plans() {
        let dir = tmp_dir("round-trip");
        let plan = smoke_plan(7);
        let mut store = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");
        let art = CrawlArtifact {
            store: pd_sheriff::MeasurementStore::new(),
            stats: vec![],
        };
        let fp = crawl_fingerprint(&plan);
        store.save("crawl", fp, &[], &art).expect("save");

        let reopened = ArtifactStore::open(&dir).expect("open");
        let back: CrawlArtifact = reopened.load("crawl", fp).expect("load");
        assert_eq!(back.store.len(), 0);
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crowd", fp),
            Err(StoreError::MissingStage { .. })
        ));
        let other = crawl_fingerprint(&smoke_plan(8));
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crawl", other),
            Err(StoreError::StaleFingerprint { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_renamed_files_are_rejected() {
        let dir = tmp_dir("corrupt");
        let plan = smoke_plan(7);
        let mut store = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("create");
        let art = CrawlArtifact {
            store: pd_sheriff::MeasurementStore::new(),
            stats: vec![],
        };
        let fp = crawl_fingerprint(&plan);
        store.save("crawl", fp, &[], &art).expect("save");

        // Truncate the artifact file: load must fail, verify must flag it.
        std::fs::write(dir.join("crawl.json"), b"{ not json").expect("scribble");
        let reopened = ArtifactStore::open(&dir).expect("open");
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crawl", fp),
            Err(StoreError::Corrupt { .. })
        ));
        let verified = reopened.verify();
        assert_eq!(verified.len(), 1);
        assert!(matches!(verified[0].1, EntryHealth::Corrupt(_)));

        // A file renamed over another stage's slot fails the envelope
        // check even though the name looks right.
        store.save("crawl", fp, &[], &art).expect("re-save");
        let crowd_fp = crowd_fingerprint(&plan);
        store
            .save("crowd", crowd_fp, &[], &art)
            .expect("save crowd");
        std::fs::copy(dir.join("crawl.json"), dir.join("crowd.json")).expect("swap");
        let reopened = ArtifactStore::open(&dir).expect("open");
        assert!(matches!(
            reopened.load::<CrawlArtifact>("crowd", crowd_fp),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_records_provenance_and_plan() {
        let dir = tmp_dir("manifest");
        let plan = smoke_plan(9);
        let store = ArtifactStore::create(
            &dir,
            Provenance::new("paper", "arm-1", "medium", 9, 4),
            &plan,
            None,
        )
        .expect("create");
        let m = ArtifactStore::open(&dir).expect("open").manifest().clone();
        assert_eq!(m.schema_version, SCHEMA_VERSION);
        assert_eq!(m.provenance.scenario, "paper");
        assert_eq!(m.provenance.label, "arm-1");
        assert_eq!(m.provenance.threads, 4);
        assert_eq!(m.plan.config.seed.value(), 9);
        assert_eq!(m.plan.to_plan().config, plan.config);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_records_the_producing_spec() {
        let dir = tmp_dir("spec-record");
        let plan = smoke_plan(3);
        let spec = crate::spec::builtin_specs()
            .into_iter()
            .find(|s| s.name == "failure-sweep")
            .expect("builtin");
        ArtifactStore::create(
            &dir,
            Provenance::new("failure-sweep", "fail-0", "smoke", 3, 1),
            &plan,
            Some(spec.clone()),
        )
        .expect("create");
        let m = ArtifactStore::open(&dir).expect("open").manifest().clone();
        let recorded = m.spec.expect("spec recorded");
        assert_eq!(recorded, spec, "spec must round-trip through the manifest");
        assert_eq!(recorded.fingerprint(), spec.fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_non_stores_and_future_schemas() {
        let dir = tmp_dir("no-manifest");
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(matches!(
            ArtifactStore::open(&dir),
            Err(StoreError::NoManifest { .. })
        ));
        std::fs::write(dir.join(MANIFEST_FILE), b"]]").expect("write");
        assert!(matches!(
            ArtifactStore::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
