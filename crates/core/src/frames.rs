//! The incremental per-domain analysis cache.
//!
//! Every `analyze()` call used to rebuild the full [`CheckFrame`] from
//! the measurement stores — at paper scale that is hundreds of
//! thousands of band-filter evaluations repeated for every re-analysis,
//! every `pd rerun`, and every sweep arm. The [`FrameCache`] memoizes
//! frames at two granularities, keyed by the **measurement fingerprint**
//! of the store they were cut from ([`crate::store`]):
//!
//! * *domain shards* — `(fingerprint, domain) → Arc<CheckFrame>`, built
//!   in parallel (one task per retailer) on the deterministic
//!   [`Executor`]; held only while a store's assembly is in flight and
//!   released once the assembled frame is memoized (the rows would
//!   otherwise be retained twice);
//! * *assembled frames* — `fingerprint → Arc<CheckFrame>`, the shards
//!   spliced back into exact store order with
//!   [`CheckFrame::merge_shards`].
//!
//! Because the key is the fingerprint — a digest of everything that can
//! reshape the store — a cache hit is exactly as trustworthy as the
//! artifact store's read-through: same plan, same bytes. The cache pays
//! off on *repeated analysis of the same measurements*: a second
//! `analyze()`, a `pd rerun` under different figure knobs. Engines
//! built from one [`crate::ExperimentBuilder`] also share a cache, but
//! note the built-in sweeps never collide on a key (their arms differ
//! through seed, config or engine knobs, all part of the fingerprint) —
//! cross-arm reuse only materializes for custom sweeps whose arms vary
//! nothing but [`crate::AnalysisConfig`]. If two such arms do race on a
//! key, both may build the same shards; results are unaffected (equal
//! values, first insert wins) and only the per-arm `frames_built`
//! counters over-report.
//!
//! ```
//! use pd_core::{Executor, FrameCache};
//! use pd_currency::FxSeries;
//! use pd_sheriff::MeasurementStore;
//! use pd_util::Seed;
//!
//! let cache = FrameCache::new();
//! let fx = FxSeries::generate(Seed::new(1), 10);
//! let store = MeasurementStore::new();
//! let exec = Executor::serial();
//! let (frame, stats) = cache.frame_for(7, &store, &fx, &exec);
//! assert_eq!((stats.built, stats.reused), (0, 0), "empty store, no shards");
//! let (again, stats) = cache.frame_for(7, &store, &fx, &exec);
//! assert!(std::sync::Arc::ptr_eq(&frame, &again), "second call is a hit");
//! assert_eq!(stats.built, 0);
//! ```

use crate::executor::Executor;
use crate::observer::StageKind;
use crate::store::{ChunkedPayload, StoreError};
use pd_analysis::CheckFrame;
use pd_currency::FxSeries;
use pd_sheriff::{Measurement, MeasurementStore};
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What one [`FrameCache::frame_for`] (or
/// [`FrameCache::frame_for_chunked`]) call did: how many per-domain
/// frames it had to build versus how many it served from the cache, and
/// how many binary chunks it decoded to do so. Surfaced as the
/// `frames_built` / `frames_reused` / `frames_chunks_loaded` analysis
/// counters on [`crate::RunObserver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Domain frames built by this call.
    pub built: usize,
    /// Domain frames (or a whole assembled frame) served from cache.
    pub reused: usize,
    /// Binary store chunks decoded from a [`ChunkedPayload`] by this
    /// call. Zero on the in-memory path and on every cache hit — a
    /// non-zero value proves the call streamed rows from disk without
    /// materializing the whole payload.
    pub chunks_loaded: usize,
}

/// One store's per-domain frame shards, keyed by interned domain.
type DomainShards = HashMap<Arc<str>, Arc<CheckFrame>>;

/// Shared, thread-safe cache of per-domain [`CheckFrame`]s keyed by
/// store fingerprint. See the [module docs](self).
#[derive(Debug, Default)]
pub struct FrameCache {
    /// `store fingerprint → domain →` that domain's frame shard.
    shards: Mutex<HashMap<u64, DomainShards>>,
    /// `store fingerprint → (full frame, number of domain shards)`.
    assembled: Mutex<HashMap<u64, (Arc<CheckFrame>, usize)>>,
}

impl FrameCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The analysis-ready frame for `store`, identified by `key` (the
    /// producing stage's fingerprint). Missing domain shards are built
    /// in parallel on `exec` — one task per retailer — and spliced into
    /// store order; present shards (and whole assembled frames) are
    /// reused. The returned frame is row-for-row identical to
    /// `CheckFrame::build(store, fx)` at any thread count.
    ///
    /// Correctness rests on the fingerprint contract: `key` must change
    /// whenever the store's content could ([`crate::store`] derives it
    /// from the full measurement configuration).
    ///
    /// # Panics
    ///
    /// Panics if a cache lock is poisoned (a frame build panicked).
    #[must_use]
    pub fn frame_for(
        &self,
        key: u64,
        store: &MeasurementStore,
        fx: &FxSeries,
        exec: &Executor,
    ) -> (Arc<CheckFrame>, FrameStats) {
        if let Some((frame, shards)) = self.assembled.lock().expect("frame cache lock").get(&key) {
            return (
                Arc::clone(frame),
                FrameStats {
                    built: 0,
                    reused: *shards,
                    chunks_loaded: 0,
                },
            );
        }

        let domains = store.domains();
        let mut have: Vec<Option<Arc<CheckFrame>>> = Vec::with_capacity(domains.len());
        let mut missing: Vec<usize> = Vec::new();
        {
            let shards = self.shards.lock().expect("frame cache lock");
            let for_key = shards.get(&key);
            for (i, domain) in domains.iter().enumerate() {
                match for_key.and_then(|m| m.get(domain.as_str())) {
                    Some(hit) => have.push(Some(Arc::clone(hit))),
                    None => {
                        have.push(None);
                        missing.push(i);
                    }
                }
            }
        }
        let reused = domains.len() - missing.len();

        // One pass over the store partitions record indices for the
        // missing domains (`build_domain` per domain would rescan the
        // whole store once per domain — quadratic at paper scale).
        let records = store.records();
        let mut slot_of: HashMap<&str, usize> = HashMap::with_capacity(missing.len());
        for (slot, &i) in missing.iter().enumerate() {
            slot_of.insert(domains[i].as_str(), slot);
        }
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); missing.len()];
        if !missing.is_empty() {
            for (idx, m) in records.iter().enumerate() {
                if let Some(&slot) = slot_of.get(m.domain.as_str()) {
                    members[slot].push(idx);
                }
            }
        }

        // Build the missing shards outside the lock, in parallel; the
        // executor's index-ordered merge keeps this deterministic.
        let built = exec.map_indexed(missing.len(), |j| {
            Arc::new(CheckFrame::from_rows(
                members[j]
                    .iter()
                    .filter_map(|&idx| pd_analysis::CheckRow::from_measurement(&records[idx], fx))
                    .collect(),
            ))
        });
        {
            let mut shards = self.shards.lock().expect("frame cache lock");
            let for_key = shards.entry(key).or_default();
            for (j, frame) in built.iter().enumerate() {
                let domain: Arc<str> = pd_util::intern(&domains[missing[j]]);
                for_key.entry(domain).or_insert_with(|| Arc::clone(frame));
            }
        }
        for (j, frame) in built.iter().enumerate() {
            have[missing[j]] = Some(Arc::clone(frame));
        }

        let frame = Arc::new(CheckFrame::merge_shards(
            have.iter()
                .map(|f| f.as_deref().expect("all shards present")),
        ));
        self.assembled
            .lock()
            .expect("frame cache lock")
            .entry(key)
            .or_insert_with(|| (Arc::clone(&frame), domains.len()));
        // The assembled frame supersedes the shards: every future call
        // under this key returns it before consulting the shard map, so
        // keeping the shards would hold every row in memory twice.
        self.shards.lock().expect("frame cache lock").remove(&key);
        (
            frame,
            FrameStats {
                built: missing.len(),
                reused,
                chunks_loaded: 0,
            },
        )
    }

    /// Like [`FrameCache::frame_for`], but cut from a **chunked binary
    /// payload** instead of an in-memory [`MeasurementStore`]: each
    /// missing domain shard is produced by decoding only that domain's
    /// chunk of `section` from `payload` — the whole measurement store
    /// is never materialized. `FrameStats::chunks_loaded` reports how
    /// many chunks were actually decoded (zero on a cache hit), which
    /// is what the `frames_chunks_loaded` counter surfaces.
    ///
    /// Chunks are partitioned by domain in store first-seen order and
    /// each chunk keeps original store order internally, so the result
    /// is row-for-row identical to `frame_for` over the assembled
    /// store — the two paths share one cache key space.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when a chunk is missing, fails its
    /// checksum, or a row does not deserialize as a [`Measurement`].
    ///
    /// # Panics
    ///
    /// Panics if a cache lock is poisoned (a frame build panicked).
    pub fn frame_for_chunked(
        &self,
        key: u64,
        payload: &ChunkedPayload,
        section: &str,
        fx: &FxSeries,
        exec: &Executor,
    ) -> Result<(Arc<CheckFrame>, FrameStats), StoreError> {
        if let Some((frame, shards)) = self.assembled.lock().expect("frame cache lock").get(&key) {
            return Ok((
                Arc::clone(frame),
                FrameStats {
                    built: 0,
                    reused: *shards,
                    chunks_loaded: 0,
                },
            ));
        }

        let domains: Vec<String> = payload
            .chunk_names(section)
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut have: Vec<Option<Arc<CheckFrame>>> = Vec::with_capacity(domains.len());
        let mut missing: Vec<usize> = Vec::new();
        {
            let shards = self.shards.lock().expect("frame cache lock");
            let for_key = shards.get(&key);
            for (i, domain) in domains.iter().enumerate() {
                match for_key.and_then(|m| m.get(domain.as_str())) {
                    Some(hit) => have.push(Some(Arc::clone(hit))),
                    None => {
                        have.push(None);
                        missing.push(i);
                    }
                }
            }
        }
        let reused = domains.len() - missing.len();

        // Decode the missing domains' chunks in parallel — one disk
        // read + row decode per retailer, nothing else leaves the file.
        let built = exec.map_indexed(missing.len(), |j| {
            let rows: Vec<Measurement> = payload.read_chunk_rows(section, &domains[missing[j]])?;
            Ok::<_, StoreError>(Arc::new(CheckFrame::from_rows(
                rows.iter()
                    .filter_map(|m| pd_analysis::CheckRow::from_measurement(m, fx))
                    .collect(),
            )))
        });
        let built = built.into_iter().collect::<Result<Vec<_>, _>>()?;
        {
            let mut shards = self.shards.lock().expect("frame cache lock");
            let for_key = shards.entry(key).or_default();
            for (j, frame) in built.iter().enumerate() {
                let domain: Arc<str> = pd_util::intern(&domains[missing[j]]);
                for_key.entry(domain).or_insert_with(|| Arc::clone(frame));
            }
        }
        for (j, frame) in built.iter().enumerate() {
            have[missing[j]] = Some(Arc::clone(frame));
        }

        let frame = Arc::new(CheckFrame::merge_shards(
            have.iter()
                .map(|f| f.as_deref().expect("all shards present")),
        ));
        self.assembled
            .lock()
            .expect("frame cache lock")
            .entry(key)
            .or_insert_with(|| (Arc::clone(&frame), domains.len()));
        self.shards.lock().expect("frame cache lock").remove(&key);
        Ok((
            frame,
            FrameStats {
                built: missing.len(),
                reused,
                chunks_loaded: missing.len(),
            },
        ))
    }

    /// Number of domain shards currently held for in-flight assemblies
    /// (diagnostics only; drops back to zero once a store's assembled
    /// frame is memoized).
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned (a frame build panicked).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
            .lock()
            .expect("frame cache lock")
            .values()
            .map(DomainShards::len)
            .sum()
    }
}

/// Shared, thread-safe cache of **loaded measurement artifacts**, keyed
/// by `(stage, measurement fingerprint)` — the store-level sibling of
/// [`FrameCache`]. Where the frame cache memoizes the analysis-ready
/// frames cut *from* a store, this cache memoizes the deserialized
/// store artifact itself (`CrowdArtifact`, `CrawlArtifact`, …), so N
/// concurrent re-analyses of one crawl share a single `Arc` instead of
/// each paying a disk load and holding its own copy.
///
/// Only artifacts that came off disk are cached (the fingerprint then
/// certifies the bytes); computed artifacts stay engine-private. Values
/// are type-erased as `Arc<dyn Any>` so one cache covers every stage's
/// artifact type — the typed accessors downcast, and a key can never
/// alias across types because the [`StageKind`] half of the key pins
/// the artifact type stored under it.
#[derive(Default)]
pub struct StoreCache {
    entries: Mutex<HashMap<(StageKind, u64), Arc<dyn Any + Send + Sync>>>,
}

impl std::fmt::Debug for StoreCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreCache")
            .field("entries", &self.len())
            .finish()
    }
}

impl StoreCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached artifacts.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("store cache lock").len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached artifact for `(stage, fingerprint)`, if present and of
    /// type `T`.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    #[must_use]
    pub fn get<T: Send + Sync + 'static>(
        &self,
        stage: StageKind,
        fingerprint: u64,
    ) -> Option<Arc<T>> {
        self.entries
            .lock()
            .expect("store cache lock")
            .get(&(stage, fingerprint))
            .and_then(|any| Arc::clone(any).downcast::<T>().ok())
    }

    /// Caches `artifact` under `(stage, fingerprint)` and returns the
    /// canonical `Arc` — on a racing double-load the first insert wins
    /// and the loser's copy is dropped, so every holder of a key shares
    /// one allocation.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    pub fn insert<T: Send + Sync + 'static>(
        &self,
        stage: StageKind,
        fingerprint: u64,
        artifact: Arc<T>,
    ) -> Arc<T> {
        let mut entries = self.entries.lock().expect("store cache lock");
        let slot = entries
            .entry((stage, fingerprint))
            .or_insert_with(|| artifact.clone() as Arc<dyn Any + Send + Sync>);
        Arc::clone(slot)
            .downcast::<T>()
            .unwrap_or_else(|_| unreachable!("StageKind key pins the artifact type"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::{Currency, Price};
    use pd_net::clock::SimTime;
    use pd_sheriff::measurement::NoiseTruth;
    use pd_sheriff::{Measurement, PriceObservation};
    use pd_util::{Money, RequestId, Seed, UserId, VantageId};

    fn fx() -> FxSeries {
        FxSeries::generate(Seed::new(1307), 160)
    }

    fn meas(domain: &str, slug: &str, prices_minor: &[i64]) -> Measurement {
        Measurement {
            request: RequestId::new(0),
            user: UserId::new(0),
            domain: domain.into(),
            product_slug: slug.into(),
            time: SimTime::from_millis(2 * 24 * 3_600_000),
            user_price: None,
            observations: prices_minor
                .iter()
                .enumerate()
                .map(|(i, minor)| {
                    PriceObservation::ok(
                        VantageId::new(u32::try_from(i).expect("small index")),
                        Price::new(Money::from_minor(*minor), Currency::Usd),
                        String::new(),
                    )
                })
                .collect(),
            noise_truth: NoiseTruth::Clean,
        }
    }

    fn sample_store() -> MeasurementStore {
        let mut store = MeasurementStore::new();
        store.push(meas("a.example", "p1", &[10_000, 13_000]));
        store.push(meas("b.example", "q", &[20_000, 30_000]));
        store.push(meas("a.example", "p2", &[10_000, 10_000]));
        store.push(meas("c.example", "r", &[5_000, 5_500]));
        store
    }

    #[test]
    fn cached_frame_equals_direct_build_and_counts_reuse() {
        let cache = FrameCache::new();
        let store = sample_store();
        let fx = fx();
        for threads in [1, 4] {
            let exec = Executor::new(threads);
            let (frame, stats) = cache.frame_for(42, &store, &fx, &exec);
            let direct = CheckFrame::build(&store, &fx);
            assert_eq!(frame.rows(), direct.rows(), "{threads} threads");
            if threads == 1 {
                assert_eq!(
                    stats,
                    FrameStats {
                        built: 3,
                        reused: 0,
                        chunks_loaded: 0
                    }
                );
            } else {
                assert_eq!(
                    stats,
                    FrameStats {
                        built: 0,
                        reused: 3,
                        chunks_loaded: 0
                    }
                );
            }
        }
        assert_eq!(
            cache.shard_count(),
            0,
            "shards are released once the assembled frame is memoized"
        );
    }

    #[test]
    fn chunked_frames_match_in_memory_frames() {
        use crate::config::ExperimentConfig;
        use crate::scenario::RunPlan;
        use crate::stage::CrawlArtifact;
        use crate::store::{self, ArtifactStore, Provenance, StoreFormat};

        let dir = std::env::temp_dir().join(format!("pd-frames-chunked-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let plan = RunPlan::new(ExperimentConfig::smoke(7));
        let mut artifacts = ArtifactStore::create(
            &dir,
            Provenance::new("smoke", "", "smoke", 7, 1),
            &plan,
            None,
        )
        .expect("store creates");
        artifacts.set_format(StoreFormat::Binary);
        let store = sample_store();
        let fp = store::crawl_fingerprint(&plan);
        let art = CrawlArtifact {
            store: sample_store(),
            stats: vec![],
        };
        artifacts
            .save("crawl", fp, &[], &art)
            .expect("saves binary");
        let payload = artifacts.open_chunked("crawl", fp).expect("opens chunked");

        let fx = fx();
        for threads in [1, 4] {
            let exec = Executor::new(threads);
            let memory = FrameCache::new();
            let (direct, _) = memory.frame_for(11, &store, &fx, &exec);
            let cache = FrameCache::new();
            let (chunked, stats) = cache
                .frame_for_chunked(11, &payload, "store", &fx, &exec)
                .expect("chunked build");
            assert_eq!(chunked.rows(), direct.rows(), "{threads} threads");
            assert_eq!(stats.built, 3);
            assert_eq!(stats.chunks_loaded, 3, "one chunk decoded per domain");
            // Second call is an assembled-frame hit: no disk reads.
            let (again, hit) = cache
                .frame_for_chunked(11, &payload, "store", &fx, &exec)
                .expect("cache hit");
            assert!(Arc::ptr_eq(&chunked, &again));
            assert_eq!((hit.chunks_loaded, hit.reused), (0, 3));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_cache_shares_one_arc_and_keeps_types_apart() {
        let cache = StoreCache::new();
        assert!(cache.is_empty());
        let first = cache.insert(StageKind::Crowd, 7, Arc::new(vec![1u64, 2]));
        // A racing second load of the same key: first insert wins.
        let second = cache.insert(StageKind::Crowd, 7, Arc::new(vec![9u64]));
        assert!(Arc::ptr_eq(&first, &second), "losers adopt the winner");
        let hit = cache
            .get::<Vec<u64>>(StageKind::Crowd, 7)
            .expect("cached artifact");
        assert!(Arc::ptr_eq(&first, &hit));
        // Same fingerprint under a different stage is a distinct entry.
        assert!(cache.get::<Vec<u64>>(StageKind::Crawl, 7).is_none());
        // A type mismatch is a miss, never a panic.
        assert!(cache.get::<String>(StageKind::Crowd, 7).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = FrameCache::new();
        let store = sample_store();
        let mut other = MeasurementStore::new();
        other.push(meas("a.example", "p1", &[99_000, 99_000]));
        let fx = fx();
        let exec = Executor::serial();
        let (full, _) = cache.frame_for(1, &store, &fx, &exec);
        let (small, stats) = cache.frame_for(2, &other, &fx, &exec);
        assert_eq!(stats.built, 1, "same domain under a new key rebuilds");
        assert_eq!(full.len(), 4);
        assert_eq!(small.len(), 1);
    }
}
