//! Run observation hooks: stage lifecycle events, counters, wall-times.
//!
//! The engine reports progress through a [`RunObserver`] — stage
//! started/finished events (with wall-clock duration) and named counters
//! (checks executed, measurements kept, retries, …). Observers are for
//! telemetry only: nothing an observer does can influence a run, so the
//! report stays a pure function of the seed no matter who is watching.
//!
//! Two implementations ship with the crate: [`NullObserver`] (the
//! default, ignores everything) and [`TimingObserver`] (collects
//! per-stage wall-times, counters and artifact-store loads, e.g. for
//! the `pipeline_times` bench bin or the `pd` CLI's `--timings` flag).
//!
//! ```
//! use pd_core::{RunObserver, StageKind, TimingObserver};
//! use std::time::Duration;
//!
//! let obs = TimingObserver::new();
//! obs.stage_started(StageKind::Crowd);
//! obs.counter(StageKind::Crowd, "checks", 60);
//! obs.stage_finished(StageKind::Crowd, Duration::from_millis(5));
//! obs.stage_loaded(StageKind::Crawl, "00000000deadbeef"); // store hit
//!
//! assert_eq!(obs.starts(StageKind::Crowd), 1);
//! assert_eq!(obs.timings()[0].counters, vec![("checks".to_owned(), 60)]);
//! assert_eq!(obs.loads(StageKind::Crawl), 1); // loaded, never started
//! assert_eq!(obs.starts(StageKind::Crawl), 0);
//! ```

use std::sync::Mutex;
use std::time::Duration;

/// The engine's pipeline stages, in run order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// World assembly (retailers, vantage fleet, crowd population).
    Build,
    /// The crowd campaign plus cleaning.
    Crowd,
    /// The systematic multi-day retailer crawl.
    Crawl,
    /// The persona and login probes (Sec. 4.4).
    Personas,
    /// Figures, tables and attribution.
    Analysis,
}

impl StageKind {
    /// Stable lowercase name (used in JSON and log output).
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            StageKind::Build => "build",
            StageKind::Crowd => "crowd",
            StageKind::Crawl => "crawl",
            StageKind::Personas => "personas",
            StageKind::Analysis => "analysis",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Observation hooks for one engine run. All methods have no-op
/// defaults; implement only what you need. Implementations must be
/// `Send + Sync` (the engine is shareable across threads) but events are
/// only ever emitted from the coordinating thread, in deterministic
/// order.
pub trait RunObserver: Send + Sync {
    /// All following events belong to the named sweep arm (emitted once
    /// per labeled arm, before its build stage; never emitted for
    /// single-run scenarios). Arm events arrive merged in arm order —
    /// concurrent arms record into per-arm buffers that are replayed
    /// label-ordered, so observers need no locking discipline beyond
    /// `Send + Sync`.
    fn arm_started(&self, _label: &str) {}
    /// A stage is about to run.
    fn stage_started(&self, _stage: StageKind) {}
    /// A stage finished after `wall` of wall-clock time.
    fn stage_finished(&self, _stage: StageKind, _wall: Duration) {}
    /// A named quantity observed while `stage` ran.
    fn counter(&self, _stage: StageKind, _name: &str, _value: u64) {}
    /// A stage's artifact was satisfied from an artifact store
    /// ([`crate::store`]) instead of being computed: the stage will emit
    /// no `stage_started`/`stage_finished` pair. `fingerprint` is the
    /// hex stage fingerprint the load was validated against.
    fn stage_loaded(&self, _stage: StageKind, _fingerprint: &str) {}
}

/// The do-nothing observer (the engine default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

/// One completed stage as recorded by [`TimingObserver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Sweep-arm label the stage ran under (empty for single runs).
    pub arm: String,
    /// Which stage.
    pub stage: StageKind,
    /// Wall-clock duration.
    pub wall: Duration,
    /// Counters emitted while the stage ran, in emission order.
    pub counters: Vec<(String, u64)>,
}

#[derive(Debug, Default)]
struct TimingState {
    arm: String,
    started: Vec<StageKind>,
    finished: Vec<StageTiming>,
    pending: Vec<(StageKind, String, u64)>,
    loaded: Vec<(StageKind, String)>,
}

/// Collects per-stage wall-times and counters.
#[derive(Debug, Default)]
pub struct TimingObserver {
    state: Mutex<TimingState>,
}

impl TimingObserver {
    /// A fresh, empty observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Every finished stage, in completion order.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a stage panicked).
    #[must_use]
    pub fn timings(&self) -> Vec<StageTiming> {
        self.state.lock().expect("observer lock").finished.clone()
    }

    /// How many times `stage` was started (cache-hit audits: a reused
    /// artifact must not re-start its stage).
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a stage panicked).
    #[must_use]
    pub fn starts(&self, stage: StageKind) -> usize {
        self.state
            .lock()
            .expect("observer lock")
            .started
            .iter()
            .filter(|s| **s == stage)
            .count()
    }

    /// How many times `stage` was satisfied from an artifact store
    /// (the persistence counterpart of [`TimingObserver::starts`]: a
    /// store hit must show up here and *not* in `starts`).
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a stage panicked).
    #[must_use]
    pub fn loads(&self, stage: StageKind) -> usize {
        self.state
            .lock()
            .expect("observer lock")
            .loaded
            .iter()
            .filter(|(s, _)| *s == stage)
            .count()
    }

    /// Every store-satisfied stage with its hex fingerprint, in load
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a stage panicked).
    #[must_use]
    pub fn loaded(&self) -> Vec<(StageKind, String)> {
        self.state.lock().expect("observer lock").loaded.clone()
    }
}

impl RunObserver for TimingObserver {
    fn arm_started(&self, label: &str) {
        self.state.lock().expect("observer lock").arm = label.to_owned();
    }

    fn stage_started(&self, stage: StageKind) {
        self.state
            .lock()
            .expect("observer lock")
            .started
            .push(stage);
    }

    fn stage_finished(&self, stage: StageKind, wall: Duration) {
        let mut state = self.state.lock().expect("observer lock");
        let counters = {
            let (mine, rest): (Vec<_>, Vec<_>) =
                state.pending.drain(..).partition(|(s, _, _)| *s == stage);
            state.pending = rest;
            mine.into_iter().map(|(_, n, v)| (n, v)).collect()
        };
        let arm = state.arm.clone();
        state.finished.push(StageTiming {
            arm,
            stage,
            wall,
            counters,
        });
    }

    fn counter(&self, stage: StageKind, name: &str, value: u64) {
        self.state
            .lock()
            .expect("observer lock")
            .pending
            .push((stage, name.to_owned(), value));
    }

    fn stage_loaded(&self, stage: StageKind, fingerprint: &str) {
        self.state
            .lock()
            .expect("observer lock")
            .loaded
            .push((stage, fingerprint.to_owned()));
    }
}

/// One recorded observer event (see [`BufferedObserver`]).
#[derive(Debug, Clone)]
enum ObsEvent {
    ArmStarted(String),
    Started(StageKind),
    Finished(StageKind, Duration),
    Counter(StageKind, String, u64),
    Loaded(StageKind, String),
}

/// Records every observer event for later, in-order replay.
///
/// Concurrent sweep arms each run under their own `BufferedObserver`;
/// after the arms join, the engine replays the buffers into the user's
/// observer **in arm order**. The user-facing event stream is therefore
/// deterministic and race-free no matter how the OS interleaved the
/// arms — the same contract the [`crate::Executor`]'s index-ordered
/// merge gives artifact data.
#[derive(Debug, Default)]
pub struct BufferedObserver {
    events: Mutex<Vec<ObsEvent>>,
}

impl BufferedObserver {
    /// A fresh, empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays every recorded event into `target`, in recording order.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a stage panicked).
    pub fn replay(&self, target: &dyn RunObserver) {
        for event in self.events.lock().expect("observer lock").iter() {
            match event {
                ObsEvent::ArmStarted(label) => target.arm_started(label),
                ObsEvent::Started(stage) => target.stage_started(*stage),
                ObsEvent::Finished(stage, wall) => target.stage_finished(*stage, *wall),
                ObsEvent::Counter(stage, name, value) => target.counter(*stage, name, *value),
                ObsEvent::Loaded(stage, fp) => target.stage_loaded(*stage, fp),
            }
        }
    }

    fn record(&self, event: ObsEvent) {
        self.events.lock().expect("observer lock").push(event);
    }
}

impl RunObserver for BufferedObserver {
    fn arm_started(&self, label: &str) {
        self.record(ObsEvent::ArmStarted(label.to_owned()));
    }

    fn stage_started(&self, stage: StageKind) {
        self.record(ObsEvent::Started(stage));
    }

    fn stage_finished(&self, stage: StageKind, wall: Duration) {
        self.record(ObsEvent::Finished(stage, wall));
    }

    fn counter(&self, stage: StageKind, name: &str, value: u64) {
        self.record(ObsEvent::Counter(stage, name.to_owned(), value));
    }

    fn stage_loaded(&self, stage: StageKind, fingerprint: &str) {
        self.record(ObsEvent::Loaded(stage, fingerprint.to_owned()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_observer_attributes_counters_to_stages() {
        let obs = TimingObserver::new();
        obs.stage_started(StageKind::Crowd);
        obs.counter(StageKind::Crowd, "checks", 150);
        obs.counter(StageKind::Crowd, "kept", 120);
        obs.stage_finished(StageKind::Crowd, Duration::from_millis(7));
        obs.stage_started(StageKind::Crawl);
        obs.counter(StageKind::Crawl, "retailers", 21);
        obs.stage_finished(StageKind::Crawl, Duration::from_millis(3));

        let timings = obs.timings();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].stage, StageKind::Crowd);
        assert_eq!(
            timings[0].counters,
            vec![("checks".to_owned(), 150), ("kept".to_owned(), 120)]
        );
        assert_eq!(timings[1].counters, vec![("retailers".to_owned(), 21)]);
        assert_eq!(obs.starts(StageKind::Crowd), 1);
        assert_eq!(obs.starts(StageKind::Analysis), 0);
    }

    #[test]
    fn store_loads_are_recorded_separately_from_starts() {
        let obs = TimingObserver::new();
        obs.stage_loaded(StageKind::Crowd, "00000000deadbeef");
        obs.stage_started(StageKind::Analysis);
        obs.stage_finished(StageKind::Analysis, Duration::from_millis(1));
        assert_eq!(obs.loads(StageKind::Crowd), 1);
        assert_eq!(obs.starts(StageKind::Crowd), 0, "a load is not a start");
        assert_eq!(obs.loads(StageKind::Analysis), 0);
        assert_eq!(
            obs.loaded(),
            vec![(StageKind::Crowd, "00000000deadbeef".to_owned())]
        );
    }

    #[test]
    fn buffered_observer_replays_in_recording_order() {
        let buf = BufferedObserver::new();
        buf.arm_started("seed-8");
        buf.stage_started(StageKind::Crowd);
        buf.counter(StageKind::Crowd, "checks", 9);
        buf.stage_finished(StageKind::Crowd, Duration::from_millis(2));
        buf.stage_loaded(StageKind::Crawl, "00000000deadbeef");

        let target = TimingObserver::new();
        buf.replay(&target);
        let timings = target.timings();
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].arm, "seed-8");
        assert_eq!(timings[0].counters, vec![("checks".to_owned(), 9)]);
        assert_eq!(target.loads(StageKind::Crawl), 1);
        // Replay is repeatable (the buffer is not drained).
        buf.replay(&target);
        assert_eq!(target.timings().len(), 2);
    }

    #[test]
    fn timing_observer_tags_stages_with_the_current_arm() {
        let obs = TimingObserver::new();
        obs.stage_started(StageKind::Build);
        obs.stage_finished(StageKind::Build, Duration::ZERO);
        obs.arm_started("us-heavy");
        obs.stage_started(StageKind::Crowd);
        obs.stage_finished(StageKind::Crowd, Duration::ZERO);
        let timings = obs.timings();
        assert_eq!(timings[0].arm, "", "pre-sweep stages are unlabeled");
        assert_eq!(timings[1].arm, "us-heavy");
    }

    #[test]
    fn stage_kind_names_are_stable() {
        assert_eq!(StageKind::Crowd.as_str(), "crowd");
        assert_eq!(StageKind::Personas.to_string(), "personas");
    }
}
