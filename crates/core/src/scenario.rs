//! Named scenarios: the workloads the engine knows how to run.
//!
//! A [`Scenario`] turns `(seed, profile)` parameters into one or more
//! [`RunPlan`]s — a full experiment configuration plus the engine knobs
//! the paper's ablations need (fan-out desynchronization, skipped
//! cleaning, a vantage subset). Scenarios are addressable by name
//! through the [`ScenarioRegistry`], so examples, benches, tests and the
//! `pd` CLI all pull the same workloads instead of hand-assembling
//! configs (or worse, poking engine internals).
//!
//! Built-in registry:
//!
//! | name | kind | what it runs |
//! |---|---|---|
//! | `paper` | single | the paper's study at the requested profile |
//! | `smoke` | single | the smallest structurally complete run (CI) |
//! | `desync-ablation` | sweep | synchronized vs 25-min-skewed fan-out |
//! | `no-cleaning` | single | the paper pipeline with Sec. 3.2 cleaning disabled |
//! | `vantage-subset` | single | an 8-probe fleet (the scale-down ablation) |
//! | `seed-sweep` | sweep | three consecutive seeds (conclusion stability) |
//! | `locale-sweep` | sweep | crowd population biased US / DE / BR |
//!
//! ```
//! use pd_core::{Profile, ScenarioParams, ScenarioRegistry};
//!
//! let registry = ScenarioRegistry::builtin();
//! let smoke = registry.get("smoke").expect("built-in scenario");
//! let params = ScenarioParams { seed: 7, profile: Profile::Smoke };
//! let variants = smoke.plan(&params).into_variants();
//! assert_eq!(variants.len(), 1, "smoke is a single run");
//! assert_eq!(variants[0].1.config.seed.value(), 7);
//! assert!(registry.get("warp-speed").is_none());
//! ```

use crate::config::ExperimentConfig;
use pd_net::clock::SimDuration;
use std::collections::BTreeMap;

/// The workload size a scenario is instantiated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// Sub-second CI smoke scale.
    Smoke,
    /// Test/example scale (~30× below paper).
    Small,
    /// Stable-figure scale (~5× below paper).
    Medium,
    /// The paper's full scale.
    #[default]
    Paper,
}

impl Profile {
    /// The experiment configuration for this profile.
    #[must_use]
    pub fn config(self, seed: u64) -> ExperimentConfig {
        match self {
            Profile::Smoke => ExperimentConfig::smoke(seed),
            Profile::Small => ExperimentConfig::small(seed),
            Profile::Medium => ExperimentConfig::medium(seed),
            Profile::Paper => ExperimentConfig::paper(seed),
        }
    }

    /// Parses a CLI flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "smoke" => Some(Profile::Smoke),
            "small" => Some(Profile::Small),
            "medium" => Some(Profile::Medium),
            "paper" | "full" => Some(Profile::Paper),
            _ => None,
        }
    }

    /// The flag spelling of this profile.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Small => "small",
            Profile::Medium => "medium",
            Profile::Paper => "paper",
        }
    }
}

/// Everything the engine needs to execute one run: the experiment
/// configuration plus the scenario-level knobs.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// Per-vantage fan-out skew (zero = the paper's synchronized checks).
    pub desync: SimDuration,
    /// Whether the Sec. 3.2 cleaning pass runs (the `no-cleaning`
    /// ablation disables it).
    pub cleaning: bool,
    /// Restrict the vantage fleet to these Fig. 7 labels (`None` = the
    /// full 14-probe fleet). Subsets must retain the probes the analysis
    /// conditions on ("Finland - Tampere", "USA - Boston", "USA - New
    /// York", "USA - Chicago").
    pub vantage_labels: Option<Vec<String>>,
}

impl RunPlan {
    /// The default plan for a configuration: synchronized, cleaned, full
    /// fleet — exactly the paper's methodology.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        RunPlan {
            config,
            desync: SimDuration::ZERO,
            cleaning: true,
            vantage_labels: None,
        }
    }
}

/// Parameters a scenario is instantiated with.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Root seed.
    pub seed: u64,
    /// Workload size.
    pub profile: Profile,
}

impl Default for ScenarioParams {
    /// The paper seed (1307) at paper scale.
    fn default() -> Self {
        ScenarioParams {
            seed: pd_util::seed::EXPERIMENT_SEED.value(),
            profile: Profile::Paper,
        }
    }
}

/// What a scenario instantiates to: one run, or a labeled sweep of runs
/// meant to be compared against each other.
#[derive(Debug, Clone)]
pub enum ScenarioRun {
    /// One engine run.
    Single(RunPlan),
    /// Several labeled engine runs (ablation arms, seed sweeps, …).
    Sweep(Vec<(String, RunPlan)>),
}

impl ScenarioRun {
    /// The labeled plans, with a single run labeled by the empty string.
    #[must_use]
    pub fn into_variants(self) -> Vec<(String, RunPlan)> {
        match self {
            ScenarioRun::Single(plan) => vec![(String::new(), plan)],
            ScenarioRun::Sweep(variants) => variants,
        }
    }
}

/// A named, registrable workload.
pub trait Scenario: Send + Sync {
    /// Registry key (kebab-case).
    fn name(&self) -> &str;
    /// One-line description for `pd --help` and the README table.
    fn describe(&self) -> &str;
    /// Instantiates the scenario at the given parameters.
    fn plan(&self, params: &ScenarioParams) -> ScenarioRun;
}

/// Name-addressable scenario collection. Iteration order is the sorted
/// name order (deterministic help output).
pub struct ScenarioRegistry {
    scenarios: BTreeMap<String, Box<dyn Scenario>>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl ScenarioRegistry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        ScenarioRegistry {
            scenarios: BTreeMap::new(),
        }
    }

    /// The registry with every built-in scenario registered.
    #[must_use]
    pub fn builtin() -> Self {
        let mut reg = Self::empty();
        reg.register(Box::new(PaperScenario));
        reg.register(Box::new(SmokeScenario));
        reg.register(Box::new(DesyncAblation));
        reg.register(Box::new(NoCleaningAblation));
        reg.register(Box::new(VantageSubset));
        reg.register(Box::new(SeedSweep));
        reg.register(Box::new(LocaleSweep));
        reg
    }

    /// Registers (or replaces) a scenario under its own name.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) {
        self.scenarios.insert(scenario.name().to_owned(), scenario);
    }

    /// Looks a scenario up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.scenarios.get(name).map(AsRef::as_ref)
    }

    /// All registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.keys().map(String::as_str).collect()
    }

    /// Iterates scenarios in name order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.scenarios.values().map(AsRef::as_ref)
    }
}

/// `paper`: the full study, paper methodology, at the requested profile.
#[derive(Debug, Clone, Copy)]
pub struct PaperScenario;

impl Scenario for PaperScenario {
    fn name(&self) -> &str {
        "paper"
    }

    fn describe(&self) -> &str {
        "the paper's crowd + crawl + persona study at the requested profile"
    }

    fn plan(&self, params: &ScenarioParams) -> ScenarioRun {
        ScenarioRun::Single(RunPlan::new(params.profile.config(params.seed)))
    }
}

/// `smoke`: the smallest structurally complete run; ignores the profile.
#[derive(Debug, Clone, Copy)]
pub struct SmokeScenario;

impl Scenario for SmokeScenario {
    fn name(&self) -> &str {
        "smoke"
    }

    fn describe(&self) -> &str {
        "sub-second CI run exercising every stage (profile-independent)"
    }

    fn plan(&self, params: &ScenarioParams) -> ScenarioRun {
        ScenarioRun::Single(RunPlan::new(ExperimentConfig::smoke(params.seed)))
    }
}

/// The skew the desync ablation applies between consecutive vantage
/// starts. 25 minutes spreads the 14-probe fan-out across the daily
/// reprice boundary — exactly the failure mode the paper's synchronized
/// checks (Sec. 2.2) are designed to prevent.
pub const DESYNC_SKEW: SimDuration = SimDuration::from_mins(25);

/// `desync-ablation`: synchronized vs desynchronized fan-out.
#[derive(Debug, Clone, Copy)]
pub struct DesyncAblation;

impl Scenario for DesyncAblation {
    fn name(&self) -> &str {
        "desync-ablation"
    }

    fn describe(&self) -> &str {
        "sweep: synchronized fan-out vs 25-min per-probe skew"
    }

    fn plan(&self, params: &ScenarioParams) -> ScenarioRun {
        let base = RunPlan::new(params.profile.config(params.seed));
        let mut skewed = base.clone();
        skewed.desync = DESYNC_SKEW;
        ScenarioRun::Sweep(vec![
            ("synchronized".to_owned(), base),
            ("desync-25m".to_owned(), skewed),
        ])
    }
}

/// `no-cleaning`: the paper pipeline with the Sec. 3.2 cleaning skipped.
#[derive(Debug, Clone, Copy)]
pub struct NoCleaningAblation;

impl Scenario for NoCleaningAblation {
    fn name(&self) -> &str {
        "no-cleaning"
    }

    fn describe(&self) -> &str {
        "paper run with the Sec. 3.2 noise-cleaning pass disabled"
    }

    fn plan(&self, params: &ScenarioParams) -> ScenarioRun {
        let mut plan = RunPlan::new(params.profile.config(params.seed));
        plan.cleaning = false;
        ScenarioRun::Single(plan)
    }
}

/// The 8-probe fleet of the `vantage-subset` scenario. Keeps every probe
/// the analysis conditions on while halving the fan-out cost.
pub const VANTAGE_SUBSET_LABELS: [&str; 8] = [
    "USA - Boston",
    "USA - New York",
    "USA - Chicago",
    "Finland - Tampere",
    "Germany - Berlin",
    "UK - London",
    "Brazil - Sao Paulo",
    "Spain (Linux,FF)",
];

/// `vantage-subset`: the study on an 8-probe fleet.
#[derive(Debug, Clone, Copy)]
pub struct VantageSubset;

impl Scenario for VantageSubset {
    fn name(&self) -> &str {
        "vantage-subset"
    }

    fn describe(&self) -> &str {
        "paper run on an 8-probe fleet (fan-out cost ablation)"
    }

    fn plan(&self, params: &ScenarioParams) -> ScenarioRun {
        let mut plan = RunPlan::new(params.profile.config(params.seed));
        plan.vantage_labels = Some(
            VANTAGE_SUBSET_LABELS
                .iter()
                .map(|l| (*l).to_owned())
                .collect(),
        );
        ScenarioRun::Single(plan)
    }
}

/// `seed-sweep`: three consecutive seeds, for conclusion stability.
#[derive(Debug, Clone, Copy)]
pub struct SeedSweep;

impl Scenario for SeedSweep {
    fn name(&self) -> &str {
        "seed-sweep"
    }

    fn describe(&self) -> &str {
        "sweep: three consecutive seeds (are conclusions seed-stable?)"
    }

    fn plan(&self, params: &ScenarioParams) -> ScenarioRun {
        ScenarioRun::Sweep(
            (0..3)
                .map(|offset| {
                    let seed = params.seed + offset;
                    (
                        format!("seed-{seed}"),
                        RunPlan::new(params.profile.config(seed)),
                    )
                })
                .collect(),
        )
    }
}

/// `locale-sweep`: the crowd population biased toward three different
/// home countries.
#[derive(Debug, Clone, Copy)]
pub struct LocaleSweep;

impl Scenario for LocaleSweep {
    fn name(&self) -> &str {
        "locale-sweep"
    }

    fn describe(&self) -> &str {
        "sweep: crowd population biased US / DE / BR (discovery robustness)"
    }

    fn plan(&self, params: &ScenarioParams) -> ScenarioRun {
        use pd_net::geo::Country;
        ScenarioRun::Sweep(
            [
                ("us-heavy", Country::UnitedStates),
                ("de-heavy", Country::Germany),
                ("br-heavy", Country::Brazil),
            ]
            .into_iter()
            .map(|(label, country)| {
                let mut plan = RunPlan::new(params.profile.config(params.seed));
                plan.config.crowd.bias_country = Some(country);
                (label.to_owned(), plan)
            })
            .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_the_documented_scenarios() {
        let reg = ScenarioRegistry::builtin();
        assert_eq!(
            reg.names(),
            vec![
                "desync-ablation",
                "locale-sweep",
                "no-cleaning",
                "paper",
                "seed-sweep",
                "smoke",
                "vantage-subset",
            ]
        );
        assert!(reg.get("paper").is_some());
        assert!(reg.get("nope").is_none());
        for s in reg.iter() {
            assert!(!s.describe().is_empty(), "{} undocumented", s.name());
        }
    }

    #[test]
    fn registration_is_by_name_and_replaces() {
        let mut reg = ScenarioRegistry::empty();
        reg.register(Box::new(PaperScenario));
        reg.register(Box::new(PaperScenario));
        assert_eq!(reg.names(), vec!["paper"]);
    }

    #[test]
    fn paper_scenario_tracks_profile_and_seed() {
        let run = PaperScenario.plan(&ScenarioParams {
            seed: 42,
            profile: Profile::Small,
        });
        let ScenarioRun::Single(plan) = run else {
            panic!("paper is a single run");
        };
        assert_eq!(plan.config.seed.value(), 42);
        assert_eq!(
            plan.config.crowd.checks,
            ExperimentConfig::small(42).crowd.checks
        );
        assert!(plan.cleaning);
        assert_eq!(plan.desync, SimDuration::ZERO);
        assert!(plan.vantage_labels.is_none());
    }

    #[test]
    fn ablation_scenarios_set_their_knobs() {
        let params = ScenarioParams {
            seed: 1,
            profile: Profile::Smoke,
        };
        let ScenarioRun::Sweep(arms) = DesyncAblation.plan(&params) else {
            panic!("desync ablation is a sweep");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].1.desync, SimDuration::ZERO);
        assert_eq!(arms[1].1.desync, DESYNC_SKEW);

        let ScenarioRun::Single(no_clean) = NoCleaningAblation.plan(&params) else {
            panic!("no-cleaning is a single run");
        };
        assert!(!no_clean.cleaning);

        let ScenarioRun::Single(subset) = VantageSubset.plan(&params) else {
            panic!("vantage-subset is a single run");
        };
        assert_eq!(subset.vantage_labels.as_ref().map(Vec::len), Some(8));

        assert_eq!(SeedSweep.plan(&params).into_variants().len(), 3);
        let locales = LocaleSweep.plan(&params).into_variants();
        assert_eq!(locales.len(), 3);
        assert!(locales
            .iter()
            .all(|(_, p)| p.config.crowd.bias_country.is_some()));
    }

    #[test]
    fn profile_parsing_round_trips() {
        for p in [
            Profile::Smoke,
            Profile::Small,
            Profile::Medium,
            Profile::Paper,
        ] {
            assert_eq!(Profile::parse(p.name()), Some(p));
        }
        assert_eq!(Profile::parse("full"), Some(Profile::Paper));
        assert_eq!(Profile::parse("huge"), None);
    }
}
