//! Named scenarios: the workloads the engine knows how to run.
//!
//! A scenario is a declarative [`ScenarioSpec`] (see [`crate::spec`]):
//! a base profile, typed config overrides and sweep axes that **lower**
//! into one or more [`RunPlan`]s — a full experiment configuration plus
//! the engine knobs the paper's ablations need (fan-out
//! desynchronization, skipped cleaning, a vantage subset, crowd-targeted
//! crawling). Scenarios are addressable by name through the
//! [`ScenarioRegistry`], so examples, benches, tests and the `pd` CLI
//! all pull the same workloads instead of hand-assembling configs — and
//! because scenarios are data, new campaigns come from JSON files
//! (`pd run --spec`), not new code.
//!
//! Built-in registry:
//!
//! | name | kind | what it runs |
//! |---|---|---|
//! | `paper` | single | the paper's study at the requested profile |
//! | `smoke` | single | the smallest structurally complete run (CI) |
//! | `desync-ablation` | sweep | synchronized vs 25-min-skewed fan-out |
//! | `no-cleaning` | single | the paper pipeline with Sec. 3.2 cleaning disabled |
//! | `vantage-subset` | single | an 8-probe fleet (the scale-down ablation) |
//! | `seed-sweep` | sweep | three consecutive seeds (conclusion stability) |
//! | `locale-sweep` | sweep | crowd population biased US / DE / BR |
//! | `crowd-sweep` | sweep | crowd budget at 25/50/100% of the profile |
//! | `failure-sweep` | sweep | transient fetch failures at 0/5/20% |
//! | `targeted-crawl` | single | crawl targets ranked from crowd variation |
//!
//! ```
//! use pd_core::{Profile, ScenarioParams, ScenarioRegistry};
//!
//! let registry = ScenarioRegistry::builtin();
//! let smoke = registry.get("smoke").expect("built-in scenario");
//! let params = ScenarioParams { seed: 7, profile: Profile::Smoke };
//! let variants = smoke.plan(&params).into_variants();
//! assert_eq!(variants.len(), 1, "smoke is a single run");
//! assert_eq!(variants[0].1.config.seed.value(), 7);
//! assert!(registry.get("warp-speed").is_none());
//! assert_eq!(registry.suggest("crowd-swep"), Some("crowd-sweep"));
//! ```

use crate::config::ExperimentConfig;
use crate::spec::{builtin_specs, ScenarioSpec};
use pd_net::clock::SimDuration;
use std::collections::BTreeMap;

/// The workload size a scenario is instantiated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// Sub-second CI smoke scale.
    Smoke,
    /// Test/example scale (~30× below paper).
    Small,
    /// Stable-figure scale (~5× below paper).
    Medium,
    /// The paper's full scale.
    #[default]
    Paper,
}

impl Profile {
    /// The experiment configuration for this profile.
    #[must_use]
    pub fn config(self, seed: u64) -> ExperimentConfig {
        match self {
            Profile::Smoke => ExperimentConfig::smoke(seed),
            Profile::Small => ExperimentConfig::small(seed),
            Profile::Medium => ExperimentConfig::medium(seed),
            Profile::Paper => ExperimentConfig::paper(seed),
        }
    }

    /// Parses a CLI flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "smoke" => Some(Profile::Smoke),
            "small" => Some(Profile::Small),
            "medium" => Some(Profile::Medium),
            "paper" | "full" => Some(Profile::Paper),
            _ => None,
        }
    }

    /// The flag spelling of this profile.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Small => "small",
            Profile::Medium => "medium",
            Profile::Paper => "paper",
        }
    }
}

/// Everything the engine needs to execute one run: the experiment
/// configuration plus the scenario-level knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPlan {
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// Per-vantage fan-out skew (zero = the paper's synchronized checks).
    pub desync: SimDuration,
    /// Whether the Sec. 3.2 cleaning pass runs (the `no-cleaning`
    /// ablation disables it).
    pub cleaning: bool,
    /// Restrict the vantage fleet to these Fig. 7 labels (`None` = the
    /// full 14-probe fleet). Subsets must retain the probes the analysis
    /// conditions on ("Finland - Tampere", "USA - Boston", "USA - New
    /// York", "USA - Chicago").
    pub vantage_labels: Option<Vec<String>>,
    /// Pick crawl targets from confirmed crowd variation instead of the
    /// paper's fixed 21-retailer list; the value is the minimum
    /// confirmed-variation count a domain needs to be crawled
    /// ([`crate::stage::targets_from_crowd`]).
    pub targets_from_crowd: Option<usize>,
}

impl RunPlan {
    /// The default plan for a configuration: synchronized, cleaned, full
    /// fleet, paper crawl targets — exactly the paper's methodology.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        RunPlan {
            config,
            desync: SimDuration::ZERO,
            cleaning: true,
            vantage_labels: None,
            targets_from_crowd: None,
        }
    }
}

/// Parameters a scenario is instantiated with.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Root seed.
    pub seed: u64,
    /// Workload size.
    pub profile: Profile,
}

impl Default for ScenarioParams {
    /// The paper seed (1307) at paper scale.
    fn default() -> Self {
        ScenarioParams {
            seed: pd_util::seed::EXPERIMENT_SEED.value(),
            profile: Profile::Paper,
        }
    }
}

/// What a scenario lowers to: one run, or a labeled sweep of runs meant
/// to be compared against each other.
#[derive(Debug, Clone)]
pub enum ScenarioRun {
    /// One engine run.
    Single(RunPlan),
    /// Several labeled engine runs (ablation arms, seed sweeps, …).
    Sweep(Vec<(String, RunPlan)>),
}

impl ScenarioRun {
    /// The labeled plans, with a single run labeled by the empty string.
    #[must_use]
    pub fn into_variants(self) -> Vec<(String, RunPlan)> {
        match self {
            ScenarioRun::Single(plan) => vec![(String::new(), plan)],
            ScenarioRun::Sweep(variants) => variants,
        }
    }
}

/// Name-addressable collection of [`ScenarioSpec`]s. Iteration order is
/// the sorted name order (deterministic help output).
#[derive(Clone)]
pub struct ScenarioRegistry {
    scenarios: BTreeMap<String, ScenarioSpec>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl ScenarioRegistry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        ScenarioRegistry {
            scenarios: BTreeMap::new(),
        }
    }

    /// The registry with every built-in scenario registered (see
    /// [`builtin_specs`]).
    #[must_use]
    pub fn builtin() -> Self {
        let mut reg = Self::empty();
        for spec in builtin_specs() {
            reg.register(spec);
        }
        reg
    }

    /// Registers (or replaces) a spec under its own name. The spec is
    /// validated lazily — [`ScenarioSpec::lower`] reports problems when
    /// the scenario is actually used.
    pub fn register(&mut self, spec: ScenarioSpec) {
        self.scenarios.insert(spec.name.clone(), spec);
    }

    /// Looks a scenario up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.scenarios.get(name)
    }

    /// All registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.keys().map(String::as_str).collect()
    }

    /// Iterates specs in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioSpec> {
        self.scenarios.values()
    }

    /// The registered name closest to `name` by edit distance — the
    /// CLI's did-you-mean hint. `None` when nothing is plausibly close
    /// (distance greater than half the typed name, or an empty registry).
    #[must_use]
    pub fn suggest(&self, name: &str) -> Option<&str> {
        suggest_name(name, self.scenarios.keys().map(String::as_str))
    }
}

/// The candidate closest to `name` by edit distance — the generic
/// did-you-mean behind [`ScenarioRegistry::suggest`] and the spec
/// search-path errors. `None` when nothing is plausibly close (distance
/// greater than half the typed name, or no candidates).
#[must_use]
pub fn suggest_name<'a, I>(name: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let best = candidates
        .into_iter()
        .map(|candidate| (levenshtein(name, candidate), candidate))
        .min()?;
    (best.0 <= name.len().max(1).div_ceil(2)).then_some(best.1)
}

/// Classic two-row Levenshtein distance (names are short; this runs on
/// the CLI error path only).
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The skew the desync ablation applies between consecutive vantage
/// starts. 25 minutes spreads the 14-probe fan-out across the daily
/// reprice boundary — exactly the failure mode the paper's synchronized
/// checks (Sec. 2.2) are designed to prevent.
pub const DESYNC_SKEW: SimDuration = SimDuration::from_mins(25);

/// The 8-probe fleet of the `vantage-subset` scenario. Keeps every probe
/// the analysis conditions on while halving the fan-out cost.
pub const VANTAGE_SUBSET_LABELS: [&str; 8] = [
    "USA - Boston",
    "USA - New York",
    "USA - Chicago",
    "Finland - Tampere",
    "Germany - Berlin",
    "UK - London",
    "Brazil - Sao Paulo",
    "Spain (Linux,FF)",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_the_documented_scenarios() {
        let reg = ScenarioRegistry::builtin();
        assert_eq!(
            reg.names(),
            vec![
                "crowd-sweep",
                "desync-ablation",
                "failure-sweep",
                "locale-sweep",
                "no-cleaning",
                "paper",
                "seed-sweep",
                "smoke",
                "targeted-crawl",
                "vantage-subset",
            ]
        );
        assert!(reg.get("paper").is_some());
        assert!(reg.get("nope").is_none());
        for s in reg.iter() {
            assert!(!s.describe.is_empty(), "{} undocumented", s.name);
        }
    }

    #[test]
    fn registration_is_by_name_and_replaces() {
        let mut reg = ScenarioRegistry::empty();
        reg.register(ScenarioSpec::single("paper", "first"));
        reg.register(ScenarioSpec::single("paper", "second"));
        assert_eq!(reg.names(), vec!["paper"]);
        assert_eq!(reg.get("paper").expect("registered").describe, "second");
    }

    #[test]
    fn paper_scenario_tracks_profile_and_seed() {
        let reg = ScenarioRegistry::builtin();
        let run = reg.get("paper").expect("builtin").plan(&ScenarioParams {
            seed: 42,
            profile: Profile::Small,
        });
        let ScenarioRun::Single(plan) = run else {
            panic!("paper is a single run");
        };
        assert_eq!(plan.config.seed.value(), 42);
        assert_eq!(
            plan.config.crowd.checks,
            ExperimentConfig::small(42).crowd.checks
        );
        assert!(plan.cleaning);
        assert_eq!(plan.desync, SimDuration::ZERO);
        assert!(plan.vantage_labels.is_none());
        assert!(plan.targets_from_crowd.is_none());
    }

    #[test]
    fn ablation_scenarios_set_their_knobs() {
        let reg = ScenarioRegistry::builtin();
        let params = ScenarioParams {
            seed: 1,
            profile: Profile::Smoke,
        };
        let plan_of = |name: &str| reg.get(name).expect("builtin").plan(&params);

        let ScenarioRun::Sweep(arms) = plan_of("desync-ablation") else {
            panic!("desync ablation is a sweep");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].1.desync, SimDuration::ZERO);
        assert_eq!(arms[1].1.desync, DESYNC_SKEW);

        let ScenarioRun::Single(no_clean) = plan_of("no-cleaning") else {
            panic!("no-cleaning is a single run");
        };
        assert!(!no_clean.cleaning);

        let ScenarioRun::Single(subset) = plan_of("vantage-subset") else {
            panic!("vantage-subset is a single run");
        };
        assert_eq!(subset.vantage_labels.as_ref().map(Vec::len), Some(8));

        assert_eq!(plan_of("seed-sweep").into_variants().len(), 3);
        let locales = plan_of("locale-sweep").into_variants();
        assert_eq!(locales.len(), 3);
        assert!(locales
            .iter()
            .all(|(_, p)| p.config.crowd.bias_country.is_some()));
    }

    #[test]
    fn roadmap_scenarios_lower_to_their_knobs() {
        let reg = ScenarioRegistry::builtin();
        let params = ScenarioParams {
            seed: 1,
            profile: Profile::Smoke,
        };
        let crowd = reg
            .get("crowd-sweep")
            .expect("builtin")
            .plan(&params)
            .into_variants();
        assert_eq!(crowd.len(), 3);
        assert!(
            crowd[0].1.config.crowd.checks < crowd[2].1.config.crowd.checks,
            "arms scale the crowd budget"
        );

        let failures = reg
            .get("failure-sweep")
            .expect("builtin")
            .plan(&params)
            .into_variants();
        let rates: Vec<f64> = failures
            .iter()
            .map(|(_, p)| p.config.world.failure_rate)
            .collect();
        assert_eq!(rates, vec![0.0, 0.05, 0.2]);

        let ScenarioRun::Single(targeted) =
            reg.get("targeted-crawl").expect("builtin").plan(&params)
        else {
            panic!("targeted-crawl is a single run");
        };
        assert_eq!(targeted.targets_from_crowd, Some(1));
    }

    #[test]
    fn profile_parsing_round_trips() {
        for p in [
            Profile::Smoke,
            Profile::Small,
            Profile::Medium,
            Profile::Paper,
        ] {
            assert_eq!(Profile::parse(p.name()), Some(p));
        }
        assert_eq!(Profile::parse("full"), Some(Profile::Paper));
        assert_eq!(Profile::parse("huge"), None);
    }

    #[test]
    fn suggest_finds_near_misses_only() {
        let reg = ScenarioRegistry::builtin();
        assert_eq!(reg.suggest("crowd-swep"), Some("crowd-sweep"));
        assert_eq!(reg.suggest("papr"), Some("paper"));
        assert_eq!(reg.suggest("seed-sweeep"), Some("seed-sweep"));
        assert_eq!(reg.suggest("completely-unrelated-zzz"), None);
        assert_eq!(ScenarioRegistry::empty().suggest("paper"), None);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("paper", "paper"), 0);
    }
}
