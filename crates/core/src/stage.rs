//! Typed stage artifacts and the stage functions that produce them.
//!
//! The paper's study is a funnel of four stages; each one now has an
//! explicit, serializable artifact so callers can run, cache, reuse and
//! inspect intermediate results instead of re-running the whole world:
//!
//! * [`CrowdArtifact`] — the crowd campaign: raw store, cleaned store,
//!   [`CleaningReport`],
//! * [`CrawlArtifact`] — the systematic crawl: store + per-retailer stats,
//! * [`PersonaArtifact`] — the Sec. 4.4 login and persona probes,
//! * [`AnalysisArtifact`] — every figure and table ([`Report`]).
//!
//! The stage functions are free functions over `(&World, plan/config,
//! &Executor, &dyn RunObserver)`; the caching engine
//! ([`crate::Engine`]) and the legacy [`crate::Experiment`] shim both
//! call them, so a stage behaves identically whether it is cached,
//! re-run, loaded from an on-disk store ([`crate::store`]), sequential
//! or fanned across worker threads.
//!
//! ```
//! use pd_core::{Executor, ExperimentConfig, NullObserver, RunPlan, World};
//!
//! // A stage is just a function of the world and its plan.
//! let plan = RunPlan::new(ExperimentConfig::smoke(7));
//! let world = World::build(&plan.config);
//! let crowd = pd_core::stage::crowd_stage(&world, &plan, &Executor::serial(), &NullObserver);
//! assert!(crowd.cleaned.len() <= crowd.raw.len(), "cleaning only drops");
//! ```

use crate::config::ExperimentConfig;
use crate::executor::Executor;
use crate::frames::{FrameCache, FrameStats};
use crate::observer::{RunObserver, StageKind};
use crate::report::{Fig8Grid, Report};
use crate::scenario::RunPlan;
use crate::store::{ChunkedPayload, StoreError};
use crate::world::World;
use pd_analysis::{crawl, crowd as crowd_figs, location, login, strategy, summary, thirdparty};
use pd_crawler::crawl::RetailerCrawlStats;
use pd_crawler::{select_targets, Crawler};
use pd_currency::Locale;
use pd_extract::HighlightExtractor;
use pd_net::clock::SimTime;
use pd_net::geo::{Country, Location};
use pd_sheriff::cleaning::{clean, CleaningReport};
use pd_sheriff::personas::{self, LoginExperiment, PersonaExperiment};
use pd_sheriff::MeasurementStore;
use pd_web::template::price_selector;
use pd_web::Request;
use serde::{Deserialize, Serialize};

/// The crowd-stage artifact: the raw campaign, the cleaned store and the
/// cleaning accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdArtifact {
    /// Every measurement the campaign produced, noise included.
    pub raw: MeasurementStore,
    /// The store after the Sec. 3.2 cleaning rules and the automated tax
    /// check (equal to `raw` when the plan disables cleaning).
    pub cleaned: MeasurementStore,
    /// What the cleaning pass did.
    pub cleaning: CleaningReport,
}

/// The crawl-stage artifact: the crawled dataset plus bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlArtifact {
    /// Every crawl probe.
    pub store: MeasurementStore,
    /// Per-retailer bookkeeping, in target order.
    pub stats: Vec<RetailerCrawlStats>,
}

/// The persona-stage artifact: the Sec. 4.4 controlled probes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersonaArtifact {
    /// The Fig. 10 login experiment.
    pub login: LoginExperiment,
    /// The affluent-vs-budget persona experiment.
    pub persona: PersonaExperiment,
}

/// The analysis-stage artifact: the full report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisArtifact {
    /// Every figure and table of the paper's evaluation.
    pub report: Report,
}

/// Runs a stage under observer start/finish events, timing it.
pub(crate) fn observed<T>(obs: &dyn RunObserver, stage: StageKind, f: impl FnOnce() -> T) -> T {
    obs.stage_started(stage);
    let start = std::time::Instant::now();
    let result = f();
    obs.stage_finished(stage, start.elapsed());
    result
}

/// Stage 2: the crowd campaign plus cleaning. The campaign is planned
/// sequentially (one RNG stream) and the planned checks are fanned
/// across the executor; plan-order merging keeps the store identical to
/// a sequential run.
#[must_use]
pub fn crowd_stage(
    world: &World,
    plan: &RunPlan,
    exec: &Executor,
    obs: &dyn RunObserver,
) -> CrowdArtifact {
    observed(obs, StageKind::Crowd, || {
        let plans = world.crowd.plan_campaign(&world.web);
        obs.counter(StageKind::Crowd, "planned_checks", plans.len() as u64);
        let results = exec.map_indexed(plans.len(), |i| {
            world
                .crowd
                .execute_check(&world.web, &world.sheriff, &plans[i])
        });
        let mut raw = MeasurementStore::new();
        for m in results.into_iter().flatten() {
            raw.push(m);
        }
        obs.counter(StageKind::Crowd, "measurements", raw.len() as u64);

        let (cleaned, cleaning) = if plan.cleaning {
            clean_crowd_store(world, &plan.config, &raw, exec)
        } else {
            skip_cleaning(&raw)
        };
        obs.counter(StageKind::Crowd, "kept", cleaning.kept as u64);
        CrowdArtifact {
            raw,
            cleaned,
            cleaning,
        }
    })
}

/// The Sec. 3.2 cleaning rules plus the automated per-domain tax check.
fn clean_crowd_store(
    world: &World,
    config: &ExperimentConfig,
    raw: &MeasurementStore,
    exec: &Executor,
) -> (MeasurementStore, CleaningReport) {
    let web = &world.web;
    let crowd = &world.crowd;
    let fx = web.fx();
    let (mut cleaned, mut report) = clean(raw, fx, |m| {
        // Refetch the URI as the user's own browser would and re-extract
        // with the retailer's template highlight.
        let user = crowd.users().get(m.user.index())?;
        let server = web.server_by_domain(&m.domain)?;
        let req = Request::get(
            &m.domain,
            &format!("/product/{}", m.product_slug),
            user.addr(),
            m.time,
        );
        let resp = web.fetch(&req);
        if resp.status.code() != 200 {
            return None;
        }
        let doc = pd_html::parse(&resp.body);
        let ex = HighlightExtractor::from_highlight(
            &doc,
            &price_selector(server.spec().template_style),
        )?;
        ex.extract(&doc, Some(Locale::of_country(user.location.country)))
            .ok()
            .map(|e| e.price)
    });
    // The paper's manual tax check, automated: drop domains whose
    // variation is explained by inlined taxes (pre-tax checkout items
    // agree across locations while displayed prices differ). Pure per
    // domain, so it fans across the executor.
    let domains = cleaned.domains();
    let verdicts = exec.map_indexed(domains.len(), |i| {
        is_tax_explained(world, config, &domains[i])
    });
    let tax_explained: std::collections::HashSet<&str> = domains
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| **v)
        .map(|(d, _)| d.as_str())
        .collect();
    let dropped = cleaned.retain(|m| !tax_explained.contains(m.domain.as_str()));
    report.dropped_tax_explained += dropped;
    report.kept -= dropped;
    (cleaned, report)
}

/// The `no-cleaning` ablation: keep everything, account honestly.
fn skip_cleaning(raw: &MeasurementStore) -> (MeasurementStore, CleaningReport) {
    let kept_truly_noisy = raw
        .records()
        .iter()
        .filter(|m| m.noise_truth != pd_sheriff::measurement::NoiseTruth::Clean)
        .count();
    (
        raw.clone(),
        CleaningReport {
            kept: raw.len(),
            dropped_inconsistent: 0,
            dropped_unhealthy: 0,
            dropped_tax_explained: 0,
            dropped_truly_noisy: 0,
            kept_truly_noisy,
        },
    )
}

/// The automated version of the paper's manual tax/shipping check: fetch
/// the same product's *checkout* from two countries with the same
/// session; if the pre-tax item lines agree (within the exchange band)
/// while the displayed product prices genuinely differ, the variation is
/// tax inlining, not discrimination.
#[must_use]
pub fn is_tax_explained(world: &World, config: &ExperimentConfig, domain: &str) -> bool {
    let web = &world.web;
    let fx = web.fx();
    let Some(server) = web.server_by_domain(domain) else {
        return false;
    };
    let Some(product) = server.catalog().iter().next() else {
        return false;
    };
    let style = server.spec().template_style;
    let probe_a = world.vantage_by_label("USA - Boston");
    let probe_b = world.vantage_by_label("Germany - Berlin");
    let (Some(a), Some(b)) = (probe_a, probe_b) else {
        return false;
    };
    let time = SimTime::from_millis(config.crowd.window_days * 24 * 3_600_000 + 9 * 3_600_000);
    let day = (time.day_index() as usize).min(fx.days().saturating_sub(1));

    let page_price = |addr, country| {
        let req = Request::get(domain, &format!("/product/{}", product.slug), addr, time)
            .with_cookie("sid", "424242");
        let resp = web.fetch(&req);
        if resp.status.code() != 200 {
            return None;
        }
        let doc = pd_html::parse(&resp.body);
        let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style))?;
        ex.extract(&doc, Some(Locale::of_country(country)))
            .ok()
            .map(|e| e.price)
    };
    let item_price = |addr, country| {
        let req = Request::get(domain, &format!("/checkout/{}", product.slug), addr, time)
            .with_cookie("sid", "424242");
        let resp = web.fetch(&req);
        if resp.status.code() != 200 {
            return None;
        }
        let doc = pd_html::parse(&resp.body);
        let cells = pd_html::Selector::parse("td.line-amount")
            .expect("static selector")
            .query_all(&doc);
        let first = cells.first()?;
        Locale::of_country(country)
            .parse(doc.text_content(*first).trim())
            .ok()
    };

    let (Some(pa), Some(pb)) = (
        page_price(a.addr, a.location.country),
        page_price(b.addr, b.location.country),
    ) else {
        return false;
    };
    let (Some(ia), Some(ib)) = (
        item_price(a.addr, a.location.country),
        item_price(b.addr, b.location.country),
    ) else {
        return false;
    };
    let page_differs = pd_currency::band_filter(fx, &[pa, pb], day)
        .map(|v| v.genuine)
        .unwrap_or(false);
    let item_differs = pd_currency::band_filter(fx, &[ia, ib], day)
        .map(|v| v.genuine)
        .unwrap_or(false);
    page_differs && !item_differs
}

/// Stage 3: the systematic crawl of the given `targets` (the paper's 21
/// retailers, or a crowd-ranked list when the plan sets
/// [`crate::RunPlan::targets_from_crowd`]), fanned per retailer and
/// merged in target order.
#[must_use]
pub fn crawl_stage(
    world: &World,
    config: &ExperimentConfig,
    targets: &[String],
    exec: &Executor,
    obs: &dyn RunObserver,
) -> CrawlArtifact {
    observed(obs, StageKind::Crawl, || {
        let crawler = Crawler::new(config.seed, config.crawl.clone());
        obs.counter(StageKind::Crawl, "retailers", targets.len() as u64);
        let shards = exec.map_indexed(targets.len(), |i| {
            crawler.crawl_one(&world.web, &world.sheriff, &targets[i])
        });
        let mut store = MeasurementStore::new();
        let mut stats = Vec::with_capacity(shards.len());
        for (shard, s) in shards {
            store.extend(shard);
            stats.push(s);
        }
        obs.counter(
            StageKind::Crawl,
            "checks",
            stats.iter().map(|s| s.checks as u64).sum(),
        );
        obs.counter(
            StageKind::Crawl,
            "retries",
            stats.iter().map(|s| s.retries as u64).sum(),
        );
        CrawlArtifact { store, stats }
    })
}

/// The fixed persona/login experiment site: Boston, the day after the
/// crawl ends, noon.
fn persona_site(
    world: &World,
    config: &ExperimentConfig,
) -> (Location, std::net::Ipv4Addr, SimTime) {
    let boston = Location::new(Country::UnitedStates, "Boston");
    let boston_vp = world
        .vantage_by_label("USA - Boston")
        .expect("Boston probe exists");
    let exp_time = SimTime::from_millis(
        (config.crawl.start_day + config.crawl.days + 1) * 24 * 3_600_000 + 12 * 3_600_000,
    );
    (boston, boston_vp.addr, exp_time)
}

/// The retailers the persona experiment probes.
const PERSONA_DOMAINS: [&str; 4] = [
    "www.amazon.com",
    "www.digitalrev.com",
    "www.hotels.com",
    "www.energie.it",
];

/// Stage 4a: the Sec. 4.4 persona and login probes, holding location and
/// time fixed. Login rows fan per product, persona pairs per domain.
#[must_use]
pub fn persona_stage(
    world: &World,
    config: &ExperimentConfig,
    exec: &Executor,
    obs: &dyn RunObserver,
) -> PersonaArtifact {
    observed(obs, StageKind::Personas, || {
        let (boston, addr, exp_time) = persona_site(world, config);
        let slugs = personas::login_slugs(&world.web, "www.amazon.com", config.login_products);
        let rows = exec.map_indexed(slugs.len(), |i| {
            personas::login_row(
                &world.web,
                config.seed,
                "www.amazon.com",
                &boston,
                addr,
                exp_time,
                i,
                &slugs[i],
            )
        });
        let login = LoginExperiment {
            domain: "www.amazon.com".to_owned(),
            rows,
        };
        obs.counter(
            StageKind::Personas,
            "login_products",
            login.rows.len() as u64,
        );

        let pairs = exec.map_indexed(PERSONA_DOMAINS.len(), |i| {
            personas::persona_pairs(
                &world.web,
                PERSONA_DOMAINS[i],
                &boston,
                addr,
                exp_time,
                config.persona_products,
            )
        });
        let (differing, total) = pairs
            .into_iter()
            .fold((0, 0), |(d, t), (pd, pt)| (d + pd, t + pt));
        let persona = PersonaExperiment {
            domains: PERSONA_DOMAINS.iter().map(|d| (*d).to_owned()).collect(),
            products_per_retailer: config.persona_products,
            differing_pairs: differing,
            total_pairs: total,
        };
        obs.counter(
            StageKind::Personas,
            "persona_pairs",
            persona.total_pairs as u64,
        );
        PersonaArtifact { login, persona }
    })
}

/// The paper's stated future work, implemented: attribute a retailer's
/// price variation to specific request factors (country, city, session,
/// day, login) by controlled probing. Returns `None` for unknown domains
/// or when a required probe is missing from the fleet.
#[must_use]
pub fn attribute_factors(
    world: &World,
    config: &ExperimentConfig,
    domain: &str,
    products: usize,
) -> Option<pd_analysis::Attribution> {
    let vp = |label: &str| {
        let v = world.vantage_by_label(label)?;
        Some((v.addr, v.location.clone()))
    };
    let probes = pd_analysis::ProbeSet {
        us_a: vp("USA - Boston")?,
        us_b: vp("USA - Chicago")?,
        us_c: vp("USA - New York")?,
        foreign: vp("Finland - Tampere")?,
    };
    let base_day = config.crawl.start_day + config.crawl.days + 2;
    pd_analysis::attribute(&world.web, &probes, domain, products, base_day)
}

/// Data-driven variant of target selection (used by the
/// `crawl_retailers` example and the crowd-value ablation): rank domains
/// by confirmed crowd variation instead of taking the paper's list.
#[must_use]
pub fn targets_from_crowd(
    world: &World,
    cleaned: &MeasurementStore,
    min_confirmed: usize,
) -> Vec<String> {
    select_targets(cleaned, world.web.fx(), min_confirmed)
        .into_iter()
        .map(|t| t.domain)
        .collect()
}

/// Where an analysis input store's rows come from: memory, or a chunked
/// binary payload on disk that is decoded one domain chunk at a time
/// (never materialized whole). Both variants yield row-identical frames
/// and summaries; only the `frames_chunks_loaded` counter tells them
/// apart.
#[derive(Clone, Copy)]
pub(crate) enum StoreSource<'a> {
    /// Rows already in memory.
    Memory(&'a MeasurementStore),
    /// Rows on disk under the named row section of a chunked payload.
    Chunked(&'a ChunkedPayload, &'static str),
}

impl StoreSource<'_> {
    /// The analysis frame for this source — through the cache under
    /// `key` when one is given, built uncached otherwise.
    fn frame(
        &self,
        keyed: Option<(&FrameCache, u64)>,
        fx: &pd_currency::FxSeries,
        exec: &Executor,
    ) -> Result<(std::sync::Arc<pd_analysis::CheckFrame>, FrameStats), StoreError> {
        match (self, keyed) {
            (Self::Memory(store), Some((cache, key))) => Ok(cache.frame_for(key, store, fx, exec)),
            (Self::Memory(store), None) => Ok((
                std::sync::Arc::new(pd_analysis::CheckFrame::build(store, fx)),
                FrameStats::default(),
            )),
            (Self::Chunked(payload, section), Some((cache, key))) => {
                cache.frame_for_chunked(key, payload, section, fx, exec)
            }
            (Self::Chunked(payload, section), None) => {
                FrameCache::new().frame_for_chunked(0, payload, section, fx, exec)
            }
        }
    }

    /// Feeds every row of this source to `f`, one chunk at a time for
    /// chunked sources.
    fn scan(&self, mut f: impl FnMut(&pd_sheriff::Measurement)) -> Result<(), StoreError> {
        match self {
            Self::Memory(store) => {
                for m in store.records() {
                    f(m);
                }
                Ok(())
            }
            Self::Chunked(payload, section) => {
                for name in payload.chunk_names(section) {
                    for m in payload.read_chunk_rows::<pd_sheriff::Measurement>(section, name)? {
                        f(&m);
                    }
                }
                Ok(())
            }
        }
    }
}

/// Stage 5: every figure and table, from the upstream artifacts. The
/// per-retailer attribution probes fan across the executor, and the
/// check frames come from the [`FrameCache`]: per-domain shards built in
/// parallel on the first call, reused (`frames_built = 0`) by every
/// later `analyze()` on the same measurement fingerprints — including
/// `pd rerun` and sweep arms sharing an upstream crawl.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn analysis_stage(
    world: &World,
    plan: &RunPlan,
    crowd: &CrowdArtifact,
    crawl_art: &CrawlArtifact,
    persona_art: &PersonaArtifact,
    frames: &FrameCache,
    exec: &Executor,
    obs: &dyn RunObserver,
) -> AnalysisArtifact {
    let keys = FrameKeys {
        cache: frames,
        crowd: crate::store::crowd_fingerprint(plan).as_u64(),
        crawl: crate::store::crawl_fingerprint(plan).as_u64(),
    };
    analysis_over(
        world,
        &plan.config,
        StoreSource::Memory(&crowd.raw),
        StoreSource::Memory(&crowd.cleaned),
        crowd.cleaning,
        StoreSource::Memory(&crawl_art.store),
        persona_art,
        Some(keys),
        exec,
        obs,
    )
    .expect("in-memory analysis sources cannot fail")
}

/// How [`analysis_over`] should obtain its frames: through a
/// [`FrameCache`] under the plan's measurement fingerprints.
pub(crate) struct FrameKeys<'a> {
    /// The shared cache.
    pub cache: &'a FrameCache,
    /// The crowd-stage fingerprint (keys the cleaned-crowd frame).
    pub crowd: u64,
    /// The crawl-stage fingerprint (keys the crawl frame).
    pub crawl: u64,
}

/// The analysis body over [`StoreSource`]s — shared by the artifact-based
/// [`analysis_stage`], the engine's chunked read path (which streams
/// domain chunks off disk), and the legacy `Experiment::analyze` shim
/// (which receives bare store references with no plan lineage, so it
/// passes no frame keys and builds uncached).
#[allow(clippy::too_many_arguments)]
pub(crate) fn analysis_over(
    world: &World,
    config: &ExperimentConfig,
    crowd_raw: StoreSource<'_>,
    crowd_clean: StoreSource<'_>,
    cleaning: CleaningReport,
    crawl_store: StoreSource<'_>,
    persona_art: &PersonaArtifact,
    frames: Option<FrameKeys<'_>>,
    exec: &Executor,
    obs: &dyn RunObserver,
) -> Result<AnalysisArtifact, StoreError> {
    observed(obs, StageKind::Analysis, || {
        let fx = world.web.fx();
        let keyed = frames.is_some();
        let (crowd_frame, crowd_stats) =
            crowd_clean.frame(frames.as_ref().map(|k| (k.cache, k.crowd)), fx, exec)?;
        let (crawl_frame, crawl_stats) =
            crawl_store.frame(frames.as_ref().map(|k| (k.cache, k.crawl)), fx, exec)?;
        if keyed {
            obs.counter(
                StageKind::Analysis,
                "frames_built",
                (crowd_stats.built + crawl_stats.built) as u64,
            );
            obs.counter(
                StageKind::Analysis,
                "frames_reused",
                (crowd_stats.reused + crawl_stats.reused) as u64,
            );
            obs.counter(
                StageKind::Analysis,
                "frames_chunks_loaded",
                (crowd_stats.chunks_loaded + crawl_stats.chunks_loaded) as u64,
            );
        }
        let crowd_frame = &*crowd_frame;
        let crawl_frame = &*crawl_frame;
        let labels = world.vantage_labels();

        // Fig. 1 + Fig. 2 (crowd view).
        let fig1 = crowd_figs::fig1_ranking(crowd_frame, config.analysis.fig1_domains);
        let fig1_domains: Vec<String> = fig1.iter().map(|b| b.domain.clone()).collect();
        let fig2 = crowd_figs::fig2_ratio_boxes(crowd_frame, &fig1_domains);

        // Figs. 3–5 (crawl view).
        let fig3 = crawl::fig3_extent(crawl_frame);
        let fig4 = crawl::fig4_magnitude(crawl_frame);
        let (fig5_points, fig5_envelope) = crawl::fig5_scatter(crawl_frame);

        // Fig. 6: digitalrev (multiplicative) and energie (additive), at
        // the paper's three locations: New York, UK, Finland.
        let fig6_locs: Vec<_> = ["USA - New York", "UK - London", "Finland - Tampere"]
            .iter()
            .filter_map(|l| world.vantage_by_label(l).map(|vp| (vp.id, vp.label())))
            .collect();
        let fig6a = strategy::fig6_curves(crawl_frame, "www.digitalrev.com", &fig6_locs);
        let fig6b = strategy::fig6_curves(crawl_frame, "www.energie.it", &fig6_locs);

        // Fig. 7 over the full fleet.
        let fig7 = location::fig7_location_boxes(crawl_frame, &labels);

        // Fig. 8 grids.
        let grid = |domain: &str, labels: &[&str]| {
            let vps: Vec<_> = labels
                .iter()
                .filter_map(|l| world.vantage_by_label(l).map(|vp| (vp.id, vp.label())))
                .collect();
            Fig8Grid {
                domain: domain.to_owned(),
                cells: location::fig8_pairwise(crawl_frame, domain, &vps),
            }
        };
        let fig8a = grid(
            "www.homedepot.com",
            &[
                "USA - Albany",
                "USA - Boston",
                "USA - Los Angeles",
                "USA - Chicago",
                "USA - Lincoln",
                "USA - New York",
            ],
        );
        let fig8b = grid(
            "www.amazon.com",
            &[
                "Belgium - Liege",
                "Brazil - Sao Paulo",
                "Finland - Tampere",
                "Germany - Berlin",
                "Spain (Linux,FF)",
                "USA - New York",
            ],
        );
        let fig8c = grid(
            "store.killah.com",
            &[
                "Brazil - Sao Paulo",
                "Finland - Tampere",
                "Germany - Berlin",
                "Spain (Linux,FF)",
                "UK - London",
                "USA - New York",
            ],
        );

        // Fig. 9: Finland vs min.
        let finland = world
            .vantage_by_label("Finland - Tampere")
            .expect("Finland probe exists")
            .id;
        let fig9 = location::fig9_finland(crawl_frame, finland);

        // Fig. 10 + persona summary, from the persona artifact.
        let fig10 = login::fig10(&persona_art.login);
        let persona = login::persona_summary(&persona_art.persona);

        // Third-party presence over the crawled set.
        let targets = world.paper_crawl_targets();
        let boston_vp = world
            .vantage_by_label("USA - Boston")
            .expect("Boston probe exists");
        let (_, _, exp_time) = persona_site(world, config);
        let third_party =
            thirdparty::scan_third_parties(&world.web, &targets, boston_vp.addr, exp_time);

        // The Sec. 3.2 summary is a streaming scan: chunked sources
        // feed it one domain chunk at a time, memory sources row by row
        // — identical numbers either way.
        let mut scan = summary::SummaryScan::new();
        crowd_raw.scan(|m| scan.crowd_row(m))?;
        crawl_store.scan(|m| scan.crawl_row(m))?;
        let summary = scan.finish(&world.crowd);

        // Extension: per-retailer factor attribution over the crawled
        // set, fanned per retailer.
        let attribution: Vec<pd_analysis::Attribution> = exec
            .map_indexed(targets.len(), |i| {
                attribute_factors(
                    world,
                    config,
                    &targets[i],
                    config.analysis.attribution_products,
                )
            })
            .into_iter()
            .flatten()
            .collect();
        obs.counter(
            StageKind::Analysis,
            "attributed_retailers",
            attribution.len() as u64,
        );

        Ok(AnalysisArtifact {
            report: Report {
                summary,
                cleaning,
                fig1,
                fig2,
                fig3,
                fig4,
                fig5_points,
                fig5_envelope,
                fig6a,
                fig6b,
                fig7,
                fig8a,
                fig8b,
                fig8c,
                fig9,
                fig10,
                persona,
                third_party,
                attribution,
            },
        })
    })
}
