//! World assembly: retailers + vantage fleet + crowd.

use crate::config::ExperimentConfig;
use pd_net::ip::IpAllocator;
use pd_net::latency::LatencyModel;
use pd_net::vantage::{paper_vantage_points, VantagePoint};
use pd_pricing::{filler_retailers, paper_retailers};
use pd_sheriff::{Crowd, Sheriff};
use pd_util::VantageId;
use pd_web::WebWorld;

/// The assembled simulation world.
#[derive(Debug)]
pub struct World {
    /// The simulated web (servers, DNS, geo-IP, FX).
    pub web: WebWorld,
    /// The fan-out engine with the 14-probe fleet.
    pub sheriff: Sheriff,
    /// The $heriff user population.
    pub crowd: Crowd,
}

impl World {
    /// Builds the world for a configuration.
    #[must_use]
    pub fn build(config: &ExperimentConfig) -> Self {
        let seed = config.seed;
        let mut specs = paper_retailers(seed);
        specs.extend(filler_retailers(seed, config.filler_domains));
        let mut web = WebWorld::build(seed, specs, config.fx_days);
        // Failure injection is part of the world, not the campaign: a
        // spec-set rate shapes every fetch (crowd, crawl, personas) and
        // is therefore in every measurement fingerprint.
        web.set_failure_rate(config.world.failure_rate);

        // Vantage points draw their client addresses from the world's
        // allocator so retailers geo-locate them city-accurately.
        let mut scratch = IpAllocator::new();
        let vantage_points: Vec<VantagePoint> = paper_vantage_points(&mut scratch)
            .into_iter()
            .map(|mut vp| {
                vp.addr = web.allocate_client(&vp.location);
                vp
            })
            .collect();
        let sheriff = Sheriff::new(vantage_points, LatencyModel::new(seed));
        let crowd = Crowd::new(seed, config.crowd.clone(), &mut web);
        World {
            web,
            sheriff,
            crowd,
        }
    }

    /// `(id, Fig. 7 label)` pairs for the full vantage fleet.
    #[must_use]
    pub fn vantage_labels(&self) -> Vec<(VantageId, String)> {
        self.sheriff
            .vantage_points()
            .iter()
            .map(|vp| (vp.id, vp.label()))
            .collect()
    }

    /// Looks a vantage point up by its Fig. 7 label.
    #[must_use]
    pub fn vantage_by_label(&self, label: &str) -> Option<&VantagePoint> {
        self.sheriff
            .vantage_points()
            .iter()
            .find(|vp| vp.label() == label)
    }

    /// The crawl-target domains, paper fidelity: the 21 retailers of
    /// Figs. 3/4/9.
    #[must_use]
    pub fn paper_crawl_targets(&self) -> Vec<String> {
        self.web
            .servers()
            .iter()
            .filter(|s| s.spec().crawled)
            .map(|s| s.spec().domain.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn world_builds_with_small_config() {
        let w = World::build(&ExperimentConfig::small(1));
        assert_eq!(w.sheriff.vantage_points().len(), 14);
        assert_eq!(w.web.servers().len(), 30 + 60);
        assert_eq!(w.paper_crawl_targets().len(), 21);
    }

    #[test]
    fn vantage_lookup_by_label() {
        let w = World::build(&ExperimentConfig::small(1));
        assert!(w.vantage_by_label("Finland - Tampere").is_some());
        assert!(w.vantage_by_label("Spain (Mac,Safari)").is_some());
        assert!(w.vantage_by_label("Mars - Olympus").is_none());
        assert_eq!(w.vantage_labels().len(), 14);
    }

    #[test]
    fn world_applies_the_configured_failure_rate() {
        let mut config = ExperimentConfig::small(1);
        config.world.failure_rate = 0.5;
        let w = World::build(&config);
        let addr = w.sheriff.vantage_points()[0].addr;
        let slug = &w.web.servers()[0].catalog().iter().next().unwrap().slug;
        let domain = &w.web.servers()[0].spec().domain;
        // At a 50% rate, 40 distinct seconds must hit at least one
        // injected failure (the failure hash is keyed, not sampled).
        let failed = (0..40u64).any(|s| {
            let req = pd_web::Request::get(
                domain,
                &format!("/product/{slug}"),
                addr,
                pd_net::clock::SimTime::from_millis(s * 1000),
            );
            w.web.fetch(&req).status.code() != 200
        });
        assert!(failed, "configured failure rate must reach the web world");
    }

    #[test]
    fn world_is_deterministic() {
        let a = World::build(&ExperimentConfig::small(9));
        let b = World::build(&ExperimentConfig::small(9));
        for (sa, sb) in a.web.servers().iter().zip(b.web.servers()) {
            assert_eq!(sa.spec(), sb.spec());
        }
        for (va, vb) in a
            .sheriff
            .vantage_points()
            .iter()
            .zip(b.sheriff.vantage_points())
        {
            assert_eq!(va, vb);
        }
    }
}
