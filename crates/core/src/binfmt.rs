//! Compact binary encoding for artifact payload [`Value`] trees.
//!
//! The JSON artifact envelopes spell every key and every repeated
//! domain/slug string out in full, per row. This module provides the
//! byte-level codec for the v3 binary store format: a tagged, varint-
//! based encoding of the same [`Value`] tree the serde stub produces,
//! with two per-buffer interning tables:
//!
//! * a **string table** — a string literal is written once, then
//!   referenced by index (one byte for the first 128 strings);
//! * a **shape table** — an object's *key set* is written once, and
//!   every later object with the same keys encodes as a shape
//!   reference followed by its values only. Measurement rows are
//!   thousands of identically-shaped observation objects, so this is
//!   where most of the 3-5x size win comes from.
//!
//! Framing (magic bytes, chunk index, checksums) lives in
//! [`crate::store`]; this module only turns `Value`s into bytes and
//! back.
//!
//! ## Wire format
//!
//! Every value starts with a one-byte tag:
//!
//! | tag | meaning | payload |
//! |----:|---------|---------|
//! | 0   | null    | —       |
//! | 1   | false   | —       |
//! | 2   | true    | —       |
//! | 3   | int     | zigzag LEB128 varint |
//! | 4   | uint (> `i64::MAX`) | LEB128 varint |
//! | 5   | float   | 8 bytes, `f64::to_bits` little-endian |
//! | 6   | new string | varint byte length + UTF-8 bytes; appended to the string table |
//! | 7   | string ref | varint index into the string table |
//! | 8   | array   | varint element count + elements |
//! | 9   | object, new shape | varint key count + keys (string-encoded) + values; shape appended to the shape table |
//! | 10  | object, shape ref | varint index into the shape table + values |
//! | 16–143  | string ref 0–127 | — (packed into the tag) |
//! | 144–207 | int 0–63 | — (packed into the tag) |
//! | 208–255 | object shape ref 0–47 | values |
//!
//! Object keys use the same new/ref string encoding as string values
//! and share one table. Both tables are threaded sequentially through
//! a buffer: decoding is strictly front-to-back, which is fine because
//! the store always decodes a chunk whole.
//!
//! Rows inside a chunk are framed as `varint original-index` +
//! `u32-LE byte length` + encoded value, after a leading varint row
//! count. The explicit index lets the store splice a chunk's rows back
//! into their original positions without trusting any ordering
//! invariant of the payload; the explicit length is a per-row
//! consistency check that catches truncation and bit-flips early.

use serde::Value;
use std::collections::HashMap;

/// Decode errors carry a human-readable detail string; [`crate::store`]
/// wraps them into `StoreError::Corrupt` with the file path attached.
pub(crate) type DecodeError = String;

/// Nesting depth cap during decode. Our real payloads are a handful of
/// levels deep; a corrupt or adversarial buffer could otherwise nest
/// arrays two bytes per level and blow the stack.
const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_UINT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR_NEW: u8 = 6;
const TAG_STR_REF: u8 = 7;
const TAG_ARRAY: u8 = 8;
const TAG_OBJ_NEW_SHAPE: u8 = 9;
const TAG_OBJ_SHAPE_REF: u8 = 10;

/// One-byte string refs: tags `SMALL_REF_BASE..=SMALL_REF_BASE+127`.
const SMALL_REF_BASE: u8 = 16;
const SMALL_REF_COUNT: u64 = 128;
/// One-byte small non-negative ints: 64 tags from `SMALL_INT_BASE`.
const SMALL_INT_BASE: u8 = 144;
const SMALL_INT_COUNT: u64 = 64;
/// One-byte shape refs: 48 tags from `SMALL_SHAPE_BASE`.
const SMALL_SHAPE_BASE: u8 = 208;
const SMALL_SHAPE_COUNT: u64 = 48;

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encoder state: the output buffer plus the string and shape tables
/// built so far.
struct Encoder {
    buf: Vec<u8>,
    strings: HashMap<String, u64>,
    shapes: HashMap<Vec<String>, u64>,
}

impl Encoder {
    fn new() -> Self {
        Self {
            buf: Vec::new(),
            strings: HashMap::new(),
            shapes: HashMap::new(),
        }
    }

    fn string(&mut self, s: &str) {
        if let Some(&idx) = self.strings.get(s) {
            if idx < SMALL_REF_COUNT {
                self.buf.push(SMALL_REF_BASE + idx as u8);
            } else {
                self.buf.push(TAG_STR_REF);
                put_varint(&mut self.buf, idx);
            }
        } else {
            self.buf.push(TAG_STR_NEW);
            put_varint(&mut self.buf, s.len() as u64);
            self.buf.extend_from_slice(s.as_bytes());
            let idx = self.strings.len() as u64;
            self.strings.insert(s.to_owned(), idx);
        }
    }

    fn object(&mut self, map: &serde::Map) {
        // BTreeMap iteration is sorted, so two objects with equal key
        // sets produce the same shape vector — and decode back into
        // the same sorted map.
        let shape: Vec<String> = map.keys().cloned().collect();
        if let Some(&idx) = self.shapes.get(&shape) {
            if idx < SMALL_SHAPE_COUNT {
                self.buf.push(SMALL_SHAPE_BASE + idx as u8);
            } else {
                self.buf.push(TAG_OBJ_SHAPE_REF);
                put_varint(&mut self.buf, idx);
            }
        } else {
            self.buf.push(TAG_OBJ_NEW_SHAPE);
            put_varint(&mut self.buf, map.len() as u64);
            for key in &shape {
                self.string(key);
            }
            let idx = self.shapes.len() as u64;
            self.shapes.insert(shape, idx);
        }
        for val in map.values() {
            self.value(val);
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.buf.push(TAG_NULL),
            Value::Bool(false) => self.buf.push(TAG_FALSE),
            Value::Bool(true) => self.buf.push(TAG_TRUE),
            Value::Int(i) => {
                if (0..SMALL_INT_COUNT as i64).contains(i) {
                    self.buf.push(SMALL_INT_BASE + *i as u8);
                } else {
                    self.buf.push(TAG_INT);
                    put_varint(&mut self.buf, zigzag(*i));
                }
            }
            Value::UInt(u) => {
                self.buf.push(TAG_UINT);
                put_varint(&mut self.buf, *u);
            }
            Value::Float(f) => {
                self.buf.push(TAG_FLOAT);
                self.buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::String(s) => self.string(s),
            Value::Array(items) => {
                self.buf.push(TAG_ARRAY);
                put_varint(&mut self.buf, items.len() as u64);
                for item in items {
                    self.value(item);
                }
            }
            Value::Object(map) => self.object(map),
        }
    }
}

/// Decoder state: a cursor over the input plus the string and shape
/// tables reconstructed so far.
struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    strings: Vec<String>,
    shapes: Vec<Vec<String>>,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            strings: Vec::new(),
            shapes: Vec::new(),
        }
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("truncated: need {n} bytes at byte {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(format!("varint longer than 10 bytes at byte {}", self.pos))
    }

    fn string_ref(&self, idx: u64) -> Result<String, DecodeError> {
        self.strings
            .get(usize::try_from(idx).unwrap_or(usize::MAX))
            .cloned()
            .ok_or_else(|| format!("string ref {idx} out of range ({})", self.strings.len()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let tag = self.byte()?;
        self.string_body(tag)
    }

    fn string_body(&mut self, tag: u8) -> Result<String, DecodeError> {
        match tag {
            TAG_STR_NEW => {
                let len = self.varint()? as usize;
                let bytes = self.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?
                    .to_owned();
                self.strings.push(s.clone());
                Ok(s)
            }
            TAG_STR_REF => {
                let idx = self.varint()?;
                self.string_ref(idx)
            }
            t if (SMALL_REF_BASE..SMALL_REF_BASE + SMALL_REF_COUNT as u8).contains(&t) => {
                self.string_ref(u64::from(t - SMALL_REF_BASE))
            }
            other => Err(format!("expected string tag, found {other}")),
        }
    }

    fn object_with_shape(&mut self, idx: u64, depth: usize) -> Result<Value, DecodeError> {
        let shape = self
            .shapes
            .get(usize::try_from(idx).unwrap_or(usize::MAX))
            .cloned()
            .ok_or_else(|| format!("shape ref {idx} out of range ({})", self.shapes.len()))?;
        let mut map = serde::Map::new();
        for key in shape {
            let val = self.value(depth + 1)?;
            map.insert(key, val);
        }
        Ok(Value::Object(map))
    }

    fn value(&mut self, depth: usize) -> Result<Value, DecodeError> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        let tag = self.byte()?;
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_INT => Ok(Value::Int(unzigzag(self.varint()?))),
            TAG_UINT => Ok(Value::UInt(self.varint()?)),
            TAG_FLOAT => {
                let bytes: [u8; 8] = self.take(8)?.try_into().expect("take(8) returned 8 bytes");
                Ok(Value::Float(f64::from_bits(u64::from_le_bytes(bytes))))
            }
            TAG_STR_NEW | TAG_STR_REF => Ok(Value::String(self.string_body(tag)?)),
            TAG_ARRAY => {
                let count = self.varint()? as usize;
                // A corrupt count can dwarf the buffer; each element is
                // at least one byte, so cap the pre-allocation.
                let mut items = Vec::with_capacity(count.min(self.buf.len() - self.pos));
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            TAG_OBJ_NEW_SHAPE => {
                let count = self.varint()? as usize;
                let mut shape = Vec::with_capacity(count.min(self.buf.len() - self.pos));
                for _ in 0..count {
                    shape.push(self.string()?);
                }
                self.shapes.push(shape);
                self.object_with_shape(self.shapes.len() as u64 - 1, depth)
            }
            TAG_OBJ_SHAPE_REF => {
                let idx = self.varint()?;
                self.object_with_shape(idx, depth)
            }
            t if (SMALL_REF_BASE..SMALL_REF_BASE + SMALL_REF_COUNT as u8).contains(&t) => Ok(
                Value::String(self.string_ref(u64::from(t - SMALL_REF_BASE))?),
            ),
            t if (SMALL_INT_BASE..SMALL_INT_BASE + SMALL_INT_COUNT as u8).contains(&t) => {
                Ok(Value::Int(i64::from(t - SMALL_INT_BASE)))
            }
            t if t >= SMALL_SHAPE_BASE => {
                self.object_with_shape(u64::from(t - SMALL_SHAPE_BASE), depth)
            }
            other => Err(format!("unknown value tag {other}")),
        }
    }
}

/// Encodes a single standalone value (envelope header, meta chunk) with
/// its own fresh tables.
pub(crate) fn encode_one(v: &Value) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.value(v);
    enc.buf
}

/// Decodes a buffer produced by [`encode_one`], rejecting trailing
/// garbage.
pub(crate) fn decode_one(bytes: &[u8]) -> Result<Value, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let v = dec.value(0)?;
    if dec.pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after value",
            bytes.len() - dec.pos
        ));
    }
    Ok(v)
}

/// Encodes a row chunk: leading varint row count, then per row the
/// original row index (varint), the encoded byte length (u32 LE), and
/// the row value. One string table and one shape table span the whole
/// chunk, so after the first row a repeated key set costs one byte.
pub(crate) fn encode_rows(rows: &[(u64, &Value)]) -> Vec<u8> {
    let mut enc = Encoder::new();
    put_varint(&mut enc.buf, rows.len() as u64);
    for (index, row) in rows {
        put_varint(&mut enc.buf, *index);
        let len_at = enc.buf.len();
        enc.buf.extend_from_slice(&[0u8; 4]);
        enc.value(row);
        let len = (enc.buf.len() - len_at - 4) as u32;
        enc.buf[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
    }
    enc.buf
}

/// Decodes a chunk produced by [`encode_rows`] back into
/// `(original index, row value)` pairs, verifying every row's length
/// frame and rejecting trailing garbage.
pub(crate) fn decode_rows(bytes: &[u8]) -> Result<Vec<(u64, Value)>, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let count = dec.varint()? as usize;
    let mut rows = Vec::with_capacity(count.min(bytes.len()));
    for n in 0..count {
        let index = dec.varint()?;
        let frame: [u8; 4] = dec.take(4)?.try_into().expect("take(4) returned 4 bytes");
        let len = u32::from_le_bytes(frame) as usize;
        let start = dec.pos;
        let row = dec.value(0).map_err(|e| format!("row {n}: {e}"))?;
        if dec.pos - start != len {
            return Err(format!(
                "row {n}: frame says {len} bytes, decoded {}",
                dec.pos - start
            ));
        }
        rows.push((index, row));
    }
    if dec.pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after {count} rows",
            bytes.len() - dec.pos
        ));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(i: u64, domain: &str) -> Value {
        let mut flags = serde::Map::new();
        flags.insert("genuine".into(), Value::Bool(i.is_multiple_of(2)));
        flags.insert("note".into(), Value::Null);
        let mut m = serde::Map::new();
        m.insert("request".into(), serde_json::to_value(&i));
        m.insert("domain".into(), Value::String(domain.to_owned()));
        m.insert(
            "product_slug".into(),
            Value::String(format!("slug-{}", i % 3)),
        );
        m.insert("prices".into(), serde_json::to_value(&[12.5, -0.25, 1e300]));
        m.insert("flags".into(), Value::Object(flags));
        m.insert("count".into(), Value::Int(-42));
        m.insert("big".into(), Value::UInt(u64::MAX));
        Value::Object(m)
    }

    #[test]
    fn scalar_values_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(63),
            Value::Int(64),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::UInt(0),
            Value::UInt(u64::MAX),
            Value::Float(3.5),
            Value::Float(-0.0),
            Value::String(String::new()),
            Value::String("héllo".to_owned()),
            Value::Array(Vec::new()),
            Value::Object(serde::Map::new()),
        ] {
            let bytes = encode_one(&v);
            assert_eq!(decode_one(&bytes).unwrap(), v, "{v:?}");
        }
        // Int and UInt must keep their variant through a round-trip
        // (equality is variant-sensitive even when the number is equal).
        assert_eq!(
            decode_one(&encode_one(&Value::UInt(5))).unwrap(),
            Value::UInt(5)
        );
        assert_eq!(
            decode_one(&encode_one(&Value::Int(5))).unwrap(),
            Value::Int(5)
        );
        // Non-finite floats survive bit-exactly (never produced by the
        // serializers, but the codec should not corrupt them).
        let nan = encode_one(&Value::Float(f64::NAN));
        match decode_one(&nan).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn nested_values_round_trip() {
        let v = sample_row(7, "shop.example");
        let bytes = encode_one(&v);
        assert_eq!(decode_one(&bytes).unwrap(), v);
    }

    #[test]
    fn tables_dedupe_repeated_rows() {
        let one = encode_rows(&[(0, &sample_row(0, "repeated-domain.example"))]);
        let rows: Vec<Value> = (0..10)
            .map(|i| sample_row(i, "repeated-domain.example"))
            .collect();
        let refs: Vec<(u64, &Value)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect();
        let ten = encode_rows(&refs);
        // Rows 2..10 reuse every key, string and object shape via
        // one-byte table refs, so ten rows must cost far less than ten
        // independent encodings.
        assert!(
            ten.len() < one.len() * 5,
            "10 rows = {} bytes vs 1 row = {} bytes",
            ten.len(),
            one.len()
        );
        let decoded = decode_rows(&ten).unwrap();
        assert_eq!(decoded.len(), 10);
        for (i, (index, row)) in decoded.iter().enumerate() {
            assert_eq!(*index, i as u64);
            assert_eq!(row, &rows[i]);
        }
    }

    #[test]
    fn many_distinct_strings_and_shapes_round_trip() {
        // Push both tables past their one-byte tag ranges so the
        // varint fallbacks get exercised.
        let mut rows: Vec<Value> = Vec::new();
        for i in 0..200u64 {
            let mut m = serde::Map::new();
            m.insert(format!("key-{i}"), Value::Int(i as i64));
            m.insert("shared".to_owned(), Value::String(format!("val-{i}")));
            rows.push(Value::Object(m));
        }
        // Repeat the whole set so every late table entry is referenced.
        let doubled: Vec<Value> = rows.iter().chain(rows.iter()).cloned().collect();
        let refs: Vec<(u64, &Value)> = doubled
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect();
        let bytes = encode_rows(&refs);
        let decoded = decode_rows(&bytes).unwrap();
        assert_eq!(decoded.len(), 400);
        for (i, (_, row)) in decoded.iter().enumerate() {
            assert_eq!(row, &doubled[i]);
        }
    }

    #[test]
    fn rows_preserve_explicit_indices() {
        let a = sample_row(3, "a.example");
        let b = sample_row(9, "b.example");
        let bytes = encode_rows(&[(9, &b), (3, &a)]);
        let decoded = decode_rows(&bytes).unwrap();
        assert_eq!(decoded[0].0, 9);
        assert_eq!(decoded[1].0, 3);
        assert_eq!(decoded[0].1, b);
        assert_eq!(decoded[1].1, a);
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let v = sample_row(1, "shop.example");
        let bytes = encode_one(&v);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_one(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let chunk = encode_rows(&[(0, &v), (1, &v)]);
        for cut in [chunk.len() / 3, chunk.len() - 1] {
            assert!(decode_rows(&chunk[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_misread() {
        // Unused tag between the object tags and the packed ranges.
        assert!(decode_one(&[12]).is_err());
        // String ref past the table.
        assert!(decode_one(&[TAG_STR_REF, 5]).is_err());
        assert!(decode_one(&[SMALL_REF_BASE + 3]).is_err());
        // Shape ref past the table.
        assert!(decode_one(&[TAG_OBJ_SHAPE_REF, 2]).is_err());
        assert!(decode_one(&[SMALL_SHAPE_BASE + 1]).is_err());
        // Invalid UTF-8 in a new string.
        assert!(decode_one(&[TAG_STR_NEW, 1, 0xff]).is_err());
        // Trailing garbage after a complete value.
        assert!(decode_one(&[TAG_NULL, TAG_NULL]).is_err());
        // Row frame length that disagrees with the encoded row.
        let mut m = serde::Map::new();
        m.insert("k".into(), Value::Int(1));
        let v = Value::Object(m);
        let mut chunk = encode_rows(&[(0, &v)]);
        chunk[2] ^= 0x01; // flip a bit in the u32 length frame
        assert!(decode_rows(&chunk).is_err());
    }

    #[test]
    fn deep_nesting_is_capped() {
        let mut bytes = Vec::new();
        for _ in 0..10_000 {
            bytes.push(TAG_ARRAY);
            bytes.push(1);
        }
        bytes.push(TAG_NULL);
        assert!(decode_one(&bytes).unwrap_err().contains("nesting"));
    }

    #[test]
    fn varint_edge_values_round_trip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut dec = Decoder::new(&buf);
            assert_eq!(dec.varint().unwrap(), v);
            assert_eq!(dec.pos, buf.len());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
