//! Vendored minimal `proptest` stub.
//!
//! The build environment has no crates.io access, so this crate replaces real
//! proptest with a deterministic random-sampling harness covering the API the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, ...) { body }`),
//! * range strategies (`-1e6f64..1e6`, `0usize..18`, ...),
//! * pattern string strategies (`"\\PC{0,64}"`, `"[a-z0-9 .,]{1,64}"` —
//!   a small regex subset: char classes, `\PC`, `{m,n}`/`{n}`/`*`/`+`
//!   quantifiers, concatenation),
//! * [`collection::vec`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! generated inputs in the message (every strategy value is `Debug`). Each
//! test runs [`CASES`] cases from a seed derived from the test's name, so
//! failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Number of cases each property test runs.
pub const CASES: usize = 64;

/// Deterministic generator backing the harness (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's name, so every test gets an
    /// independent but reproducible stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as i128 - s as i128) as u64;
                let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (s as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                Strategy::sample(&(self.start..=<$t>::MAX), rng)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

// Tuples of strategies sample element-wise, like real proptest.
macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Always returns a clone of one value (real proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

/// The regex-subset pattern interpreter behind string strategies.
mod pattern {
    use super::TestRng;

    enum CharSet {
        /// `\PC`: any printable character (not a control char).
        Printable,
        /// An explicit `[...]` class.
        Class(Vec<char>),
        /// A literal character.
        Literal(char),
    }

    struct Atom {
        set: CharSet,
        min: usize,
        max: usize,
    }

    /// Non-ASCII printable characters mixed into `\PC` samples: accented
    /// latin, currency symbols, no-break space, CJK, an emoji.
    const UNICODE_EXTRA: &[char] = &[
        'é', 'ü', 'ñ', 'ß', '€', '£', '¥', '\u{a0}', '中', '文', 'Ω', '😀',
    ];

    pub fn sample(pat: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pat);
        let mut out = String::new();
        for atom in &atoms {
            let span = atom.max - atom.min;
            let count = atom.min + rng.below(span as u64 + 1) as usize;
            for _ in 0..count {
                out.push(sample_char(&atom.set, rng));
            }
        }
        out
    }

    fn sample_char(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Literal(c) => *c,
            CharSet::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
            CharSet::Printable => {
                if rng.below(5) == 0 {
                    UNICODE_EXTRA[rng.below(UNICODE_EXTRA.len() as u64) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).expect("ASCII printable")
                }
            }
        }
    }

    fn parse(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '\\' => {
                    // Only `\PC` and escaped literals appear in the
                    // workspace's patterns.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        CharSet::Printable
                    } else {
                        let c = *chars
                            .get(i + 1)
                            .unwrap_or_else(|| panic!("dangling escape in pattern `{pat}`"));
                        i += 2;
                        CharSet::Literal(c)
                    }
                }
                '[' => {
                    let (class, next) = parse_class(&chars, i + 1, pat);
                    i = next;
                    CharSet::Class(class)
                }
                c => {
                    i += 1;
                    CharSet::Literal(c)
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pat);
            i = next;
            atoms.push(Atom { set, min, max });
        }
        atoms
    }

    fn parse_class(chars: &[char], mut i: usize, pat: &str) -> (Vec<char>, usize) {
        let mut out = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in class of `{pat}`"))
            } else {
                chars[i]
            };
            // Range `a-z` (a `-` that is not first, escaped, or last).
            if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() && chars[i + 2] != ']' {
                let end = chars[i + 2];
                for code in (c as u32)..=(end as u32) {
                    if let Some(rc) = char::from_u32(code) {
                        out.push(rc);
                    }
                }
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        }
        assert!(
            i < chars.len(),
            "unterminated character class in pattern `{pat}`"
        );
        assert!(!out.is_empty(), "empty character class in pattern `{pat}`");
        (out, i + 1)
    }

    fn parse_quantifier(chars: &[char], i: usize, pat: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in `{pat}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier lower bound"),
                        hi.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("quantifier count");
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            Some('*') => (0, 32, i + 1),
            Some('+') => (1, 32, i + 1),
            Some('?') => (0, 1, i + 1),
            _ => (1, 1, i),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::deterministic(concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            for __case in 0..$crate::CASES {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
    )+};
}

/// `assert!` under a name the property-test bodies expect.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a name the property-test bodies expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a name the property-test bodies expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Convenient glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn pattern_class_and_quantifier() {
        let mut rng = TestRng::deterministic("pattern_class");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-c0-1]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc01".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn pattern_escapes_and_literals() {
        let mut rng = TestRng::deterministic("pattern_escape");
        for _ in 0..100 {
            let s = Strategy::sample(&"[$€\\-x]{1,3}", &mut rng);
            assert!(s.chars().all(|c| "$€-x".contains(c)), "{s:?}");
            let t = Strategy::sample(&"ab{2}", &mut rng);
            assert_eq!(t, "abb");
        }
    }

    #[test]
    fn printable_has_no_controls() {
        let mut rng = TestRng::deterministic("printable");
        for _ in 0..200 {
            let s = Strategy::sample(&"\\PC{0,64}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn ranges_and_vec_strategy() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let x = Strategy::sample(&(-1e3f64..1e3), &mut rng);
            assert!((-1e3..1e3).contains(&x));
            let n = Strategy::sample(&(3usize..7), &mut rng);
            assert!((3..7).contains(&n));
            let v = Strategy::sample(&crate::collection::vec(0u32..5, 1..4), &mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(mut v in crate::collection::vec(0i64..100, 1..20),
                                  k in 0usize..5) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(k < 100);
        }
    }
}
