//! Vendored minimal `serde_json` stub.
//!
//! Renders and parses JSON text over the `serde` stub's [`Value`] tree. The
//! API mirrors the subset of real serde_json the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`] and the [`json!`] macro.
//!
//! Properties the workspace's tests rely on:
//!
//! * deterministic output (object keys sorted by the `Value` model),
//! * lossless float round-trips (shortest-representation formatting via
//!   Rust's `{:?}` for `f64`, which re-parses to the identical bits),
//! * non-finite floats degrade to `null` exactly like real serde_json.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Map, Value};

/// Converts any serializable value into a [`Value`] tree.
#[must_use]
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
/// Returns an [`Error`] when the tree's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize(&value)
}

/// Serializes to compact JSON text.
///
/// # Errors
/// Infallible in this stub; the `Result` mirrors real serde_json's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (two-space indent).
///
/// # Errors
/// Infallible in this stub; the `Result` mirrors real serde_json's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::deserialize(&v)
}

/// Builds a [`Value`] with JSON-literal syntax.
///
/// Supports object literals with string keys, array literals, `null`, and
/// arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        let mut __m = $crate::Map::new();
        $( __m.insert(::std::string::String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest string that round-trips, and
                // always keeps a fractional part or exponent so the value
                // re-parses as a float.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom(
                                        "high surrogate not followed by a low surrogate",
                                    ));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::custom("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "name": "test",
            "count": 3u32,
            "ratio": 1.25f64,
            "tags": ["a", "b"],
            "none": null
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-12, 9.99, 123456.789, 1e300] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn whole_floats_keep_a_fraction() {
        // `3.0` must not collapse to the integer `3` on the wire, or a
        // float field would re-parse as an int-only Value.
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
        // ...but int-typed JSON still coerces into float fields.
        let coerced: f64 = from_str("3").unwrap();
        assert_eq!(coerced, 3.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t control\u{1} é€漢";
        let text = to_string(&s.to_owned()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_parses() {
        let back: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(back, "é😀");
    }

    #[test]
    fn pretty_output_is_indented_and_sorted() {
        let v = json!({ "b": 1, "a": 2 });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": 2"), "{text}");
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("01x").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }
}
