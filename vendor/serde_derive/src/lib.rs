//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! in-workspace `serde` stub.
//!
//! The container image has no access to crates.io, so the workspace vendors a
//! tiny serde replacement (see `vendor/serde`). This crate provides the two
//! derive macros. It supports exactly the shapes the workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as arrays),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like real
//!   serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported; the
//! macro panics with a clear message if it meets them, so a future user gets a
//! build-time signal instead of silent misbehaviour.
//!
//! The implementation deliberately avoids `syn`/`quote` (also unavailable
//! offline): it walks the raw [`TokenStream`] to learn field/variant names and
//! then emits the impls as source text, which `TokenStream::from_str` parses.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes (including doc comments, which surface as
/// `#[doc = "..."]` token trees).
fn skip_attrs(it: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next();
        // `#!` inner attributes cannot appear here; the next tree is the
        // bracketed attribute body.
        it.next();
    }
}

/// Skips `pub` / `pub(crate)` / `pub(in ...)` visibility markers.
fn skip_vis(it: &mut Tokens) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(
            it.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            it.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let mut is_enum = false;
    loop {
        skip_attrs(&mut it);
        skip_vis(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" {
                    break;
                }
                if s == "enum" {
                    is_enum = true;
                    break;
                }
                // `union` or stray tokens: unsupported.
                if s == "union" {
                    panic!("serde stub derive does not support unions");
                }
            }
            Some(other) => panic!("serde stub derive: unexpected token {other}"),
            None => panic!("serde stub derive: ran out of tokens before struct/enum"),
        }
    }
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, found {other:?}"),
    };
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Item {
                    name,
                    kind: Kind::Enum(parse_variants(g.stream())),
                }
            } else {
                Item {
                    name,
                    kind: Kind::NamedStruct(parse_named_fields(g.stream())),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
            name,
            kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
            name,
            kind: Kind::UnitStruct,
        },
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stub derive does not support generic types (on `{name}`)")
        }
        other => panic!("serde stub derive: unsupported item shape after `{name}`: {other:?}"),
    }
}

/// Consumes one type, tracking `<`/`>` depth so commas inside generics (e.g.
/// `BTreeMap<String, String>`) do not end the field early. Stops *before* a
/// top-level comma. The `>` of an `->` return arrow (e.g. in an `fn(..) ->
/// ..` field type) is not a generic close and must not drive the depth
/// negative, or every following field would silently be swallowed into the
/// type.
fn skip_type(it: &mut Tokens) {
    let mut depth: i32 = 0;
    let mut prev_punct: Option<char> = None;
    while let Some(tt) = it.peek() {
        let cur_punct = match tt {
            TokenTree::Punct(p) => Some(p.as_char()),
            _ => None,
        };
        match cur_punct {
            Some('<') => depth += 1,
            Some('>') if prev_punct != Some('-') => depth -= 1,
            Some(',') if depth == 0 => return,
            _ => {}
        }
        prev_punct = cur_punct;
        it.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut it = ts.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut it);
        skip_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stub derive: expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after `{name}`, found {other:?}"),
        }
        skip_type(&mut it);
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut it = ts.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs(&mut it);
        skip_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        skip_type(&mut it);
        count += 1;
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut it = ts.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, found {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde stub derive does not support explicit enum discriminants");
        }
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ "
    );
    match &item.kind {
        Kind::UnitStruct => {
            out.push_str("::serde::Value::Null ");
        }
        Kind::TupleStruct(1) => {
            out.push_str("::serde::Serialize::serialize(&self.0) ");
        }
        Kind::TupleStruct(n) => {
            out.push_str("::serde::Value::Array(::std::vec![");
            for i in 0..*n {
                let _ = write!(out, "::serde::Serialize::serialize(&self.{i}), ");
            }
            out.push_str("]) ");
        }
        Kind::NamedStruct(fields) => {
            out.push_str("let mut __m = ::serde::Map::new(); ");
            for f in fields {
                let _ = write!(
                    out,
                    "__m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize(&self.{f})); "
                );
            }
            out.push_str("::serde::Value::Object(__m) ");
        }
        Kind::Enum(variants) => {
            out.push_str("match self { ");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")), "
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            out,
                            "{name}::{vn}(__f0) => ::serde::__variant(\"{vn}\", \
                             ::serde::Serialize::serialize(__f0)), "
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let _ = write!(out, "{name}::{vn}(");
                        for i in 0..*n {
                            let _ = write!(out, "__f{i}, ");
                        }
                        let _ = write!(
                            out,
                            ") => ::serde::__variant(\"{vn}\", ::serde::Value::Array(::std::vec!["
                        );
                        for i in 0..*n {
                            let _ = write!(out, "::serde::Serialize::serialize(__f{i}), ");
                        }
                        out.push_str("])), ");
                    }
                    VariantKind::Named(fields) => {
                        let _ = write!(out, "{name}::{vn} {{ ");
                        for f in fields {
                            let _ = write!(out, "{f}, ");
                        }
                        out.push_str("} => { let mut __m = ::serde::Map::new(); ");
                        for f in fields {
                            let _ = write!(
                                out,
                                "__m.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize({f})); "
                            );
                        }
                        let _ = write!(
                            out,
                            "::serde::__variant(\"{vn}\", ::serde::Value::Object(__m)) }}, "
                        );
                    }
                }
            }
            out.push_str("} ");
        }
    }
    out.push_str("} }");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "impl ::serde::Deserialize for {name} {{ \
         fn deserialize(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ "
    );
    match &item.kind {
        Kind::UnitStruct => {
            let _ = write!(out, "::std::result::Result::Ok({name}) ");
        }
        Kind::TupleStruct(1) => {
            let _ = write!(
                out,
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?)) "
            );
        }
        Kind::TupleStruct(n) => {
            let _ = write!(
                out,
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::Error::expected(\"array\", \"{name}\"))?; \
                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"array of {n}\", \"{name}\")); }} \
                 ::std::result::Result::Ok({name}("
            );
            for i in 0..*n {
                let _ = write!(out, "::serde::Deserialize::deserialize(&__a[{i}])?, ");
            }
            out.push_str(")) ");
        }
        Kind::NamedStruct(fields) => {
            let _ = write!(
                out,
                "let __o = __v.as_object().ok_or_else(|| \
                 ::serde::Error::expected(\"object\", \"{name}\"))?; \
                 ::std::result::Result::Ok({name} {{ "
            );
            for f in fields {
                let _ = write!(out, "{f}: ::serde::__field(__o, \"{f}\")?, ");
            }
            out.push_str("}) ");
        }
        Kind::Enum(variants) => {
            // Unit variants arrive as strings, payload variants as
            // single-entry objects (externally tagged).
            let _ = write!(
                out,
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{ \
                 return match __s {{ "
            );
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    let _ = write!(out, "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}), ");
                }
            }
            let _ = write!(
                out,
                "_ => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__s, \"{name}\")), }}; }} \
                 if let ::std::option::Option::Some((__k, __inner)) = __v.as_single_entry() {{ \
                 return match __k {{ "
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            out,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__inner)?)), "
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let _ = write!(
                            out,
                            "\"{vn}\" => {{ let __a = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::expected(\"array\", \"{name}::{vn}\"))?; \
                             if __a.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::expected(\"array of {n}\", \"{name}::{vn}\")); }} \
                             ::std::result::Result::Ok({name}::{vn}("
                        );
                        for i in 0..*n {
                            let _ = write!(out, "::serde::Deserialize::deserialize(&__a[{i}])?, ");
                        }
                        out.push_str(")) }, ");
                    }
                    VariantKind::Named(fields) => {
                        let _ = write!(
                            out,
                            "\"{vn}\" => {{ let __o = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::expected(\"object\", \"{name}::{vn}\"))?; \
                             ::std::result::Result::Ok({name}::{vn} {{ "
                        );
                        for f in fields {
                            let _ = write!(out, "{f}: ::serde::__field(__o, \"{f}\")?, ");
                        }
                        out.push_str("}) }, ");
                    }
                }
            }
            let _ = write!(
                out,
                "_ => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__k, \"{name}\")), }}; }} \
                 ::std::result::Result::Err(::serde::Error::expected(\"enum\", \"{name}\")) "
            );
        }
    }
    out.push_str("} }");
    out
}
