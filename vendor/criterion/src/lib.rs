//! Vendored minimal `criterion` stub.
//!
//! The build environment has no crates.io access, so this crate replaces real
//! criterion with a small wall-clock harness exposing the API subset the
//! workspace's benches use: [`Criterion`], [`Criterion::benchmark_group`],
//! `bench_function`, `sample_size`, `finish`, [`Bencher::iter`], plus the
//! [`criterion_group!`] / [`criterion_main!`] macros (used with
//! `harness = false` bench targets).
//!
//! No statistics, plots or comparisons — each benchmark is timed over a fixed
//! number of samples and the median ns/iter is printed. Good enough to keep
//! the three bench targets compiling, runnable and honest about relative
//! cost.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the stub; mirrors criterion's API).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; [`Bencher::iter`] times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warm-up call, then timed samples.
        std_black_box(f());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    b.samples_ns.sort_unstable();
    let median = b.samples_ns[b.samples_ns.len() / 2];
    println!("  {name}: median {median} ns/iter ({sample_size} samples)");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        // 1 warm-up + 20 samples.
        assert_eq!(runs, 21);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut runs = 0u64;
        g.sample_size(5).bench_function("five", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        assert_eq!(runs, 6);
    }
}
