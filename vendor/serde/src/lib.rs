//! Vendored minimal `serde` stub.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this tiny replacement instead of the real serde. It keeps the surface the
//! codebase actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//!   stub),
//! * `use serde::{Serialize, Deserialize}` importing both the traits and the
//!   derive macros under the same names, exactly like real serde's `derive`
//!   feature,
//! * enough std impls (numbers, strings, tuples, `Option`, `Vec`, string-keyed
//!   maps) for every derived type in the workspace.
//!
//! Unlike real serde's visitor-based data model, this stub serializes through
//! a concrete JSON-shaped [`Value`] tree: `Serialize` produces a `Value`,
//! `Deserialize` consumes one. The `serde_json` stub then renders/parses that
//! tree. The representation matches real serde's defaults where it matters:
//! structs become objects, newtypes are transparent, enums are externally
//! tagged, and object keys are sorted (deterministic output for the
//! reproducibility tests).

#![forbid(unsafe_code)]

// The derive macros emit paths through `::serde`, which also has to resolve
// inside this crate's own tests.
extern crate self as serde;

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Map type used for JSON objects. A `BTreeMap` keeps key order
/// deterministic, which the workspace's same-seed-same-report test relies on.
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped value tree: the serialization data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (sorted keys).
    Object(Map),
}

impl Value {
    /// The contained string, if this is a `String`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The contained array, if this is an `Array`.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The contained object, if this is an `Object`.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The number as `i64`, accepting both integer representations.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The number as `u64`, accepting both integer representations.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `f64`. Integers coerce; `null` maps to NaN (the
    /// round-trip representation of non-finite floats, as in real
    /// serde_json).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The contained bool, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// For externally tagged enums: the `(key, value)` of a single-entry
    /// object.
    #[must_use]
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(m) if m.len() == 1 => m.iter().next().map(|(k, v)| (k.as_str(), v)),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// A free-form error.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X while deserializing Y".
    #[must_use]
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing {ty}"))
    }

    /// Unknown enum variant.
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    /// Returns an [`Error`] when the value's shape does not match.
    fn deserialize(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent entirely, or `None`
    /// if absence is an error for this type. Only `Option` opts in — a
    /// missing non-optional field must fail loudly, never fall back to a
    /// sentinel (e.g. `f64` would otherwise silently become NaN through
    /// its null handling).
    fn deserialize_missing() -> Option<Self> {
        None
    }
}

/// Support function for derived code: look up and deserialize one struct
/// field. A missing key is an error unless the field type accepts absence
/// (`Option` defaults to `None`).
///
/// # Errors
/// Propagates the field's deserialization error.
pub fn __field<T: Deserialize>(m: &Map, key: &str) -> Result<T, Error> {
    match m.get(key) {
        Some(v) => T::deserialize(v),
        None => T::deserialize_missing().ok_or_else(|| Error(format!("missing field `{key}`"))),
    }
}

/// Support function for derived code: build the externally tagged enum
/// representation `{"Variant": payload}`.
#[must_use]
pub fn __variant(name: &str, payload: Value) -> Value {
    let mut m = Map::new();
    m.insert(name.to_owned(), payload);
    Value::Object(m)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let x = f64::from(*self);
                if x.is_finite() {
                    Value::Float(x)
                } else {
                    // Real serde_json also degrades non-finite floats to null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                if v.is_null() {
                    return Ok(<$t>::NAN);
                }
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::expected("number", stringify!($t)))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

// Shared-ownership strings serialize transparently as strings, like real
// serde's `rc` feature. Only `Arc` is covered: the workspace interns
// repeated domain/slug strings as `Arc<str>` (see `pd_util::intern`).
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(std::sync::Arc::from)
            .ok_or_else(|| Error::expected("string", "Arc<str>"))
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }

    fn deserialize_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::deserialize(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::expected("array of exact length", "[T; N]"))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| V::deserialize(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so output stays deterministic.
        let sorted: BTreeMap<&String, &V> = self.iter().collect();
        Value::Object(
            sorted
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| V::deserialize(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                if a.len() != $len {
                    return Err(Error::expected(concat!("array of ", $len), "tuple"));
                }
                Ok(($($t::deserialize(&a[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);
impl_tuple!(5 => A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6 => A.0, B.1, C.2, D.3, E.4, F.5);

impl Serialize for std::net::Ipv4Addr {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .ok_or_else(|| Error::expected("string", "Ipv4Addr"))?
            .parse()
            .map_err(|_| Error::expected("dotted-quad address", "Ipv4Addr"))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::expected("null", "()"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: i64,
        y: f64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Dot,
        Line(f64),
        Pair(i32, i32),
        Poly { sides: u8, closed: bool },
    }

    #[test]
    fn derived_struct_round_trips() {
        let p = Point {
            x: -3,
            y: 2.5,
            label: "origin-ish".to_owned(),
        };
        let v = p.serialize();
        assert_eq!(Point::deserialize(&v).unwrap(), p);
    }

    #[test]
    fn newtype_is_transparent() {
        let v = Wrapper(7).serialize();
        assert_eq!(v, Value::Int(7));
        assert_eq!(Wrapper::deserialize(&v).unwrap(), Wrapper(7));
    }

    #[test]
    fn enums_are_externally_tagged() {
        assert_eq!(Shape::Dot.serialize(), Value::String("Dot".to_owned()));
        for s in [
            Shape::Dot,
            Shape::Line(1.5),
            Shape::Pair(2, 3),
            Shape::Poly {
                sides: 6,
                closed: true,
            },
        ] {
            let v = s.serialize();
            assert_eq!(Shape::deserialize(&v).unwrap(), s);
        }
    }

    #[test]
    fn option_and_containers_round_trip() {
        let data: Vec<(Option<u32>, String)> = vec![(Some(1), "a".into()), (None, "b".into())];
        let v = data.serialize();
        let back: Vec<(Option<u32>, String)> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn missing_field_reports_name() {
        let v = Value::Object(Map::new());
        let err = Point::deserialize(&v).unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn missing_float_field_errors_instead_of_nan() {
        // A float field must not silently materialize as NaN when the key
        // is absent (its null handling only applies to an *explicit* null,
        // the wire form of non-finite floats).
        let mut m = Map::new();
        m.insert("x".to_owned(), Value::Int(1));
        m.insert("label".to_owned(), Value::String("p".to_owned()));
        let err = Point::deserialize(&Value::Object(m)).unwrap_err();
        assert!(err.to_string().contains("missing field `y`"), "{err}");
    }

    #[test]
    fn missing_option_field_defaults_to_none() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct WithOpt {
            required: i64,
            maybe: Option<f64>,
        }
        let mut m = Map::new();
        m.insert("required".to_owned(), Value::Int(3));
        let back = WithOpt::deserialize(&Value::Object(m)).unwrap();
        assert_eq!(
            back,
            WithOpt {
                required: 3,
                maybe: None
            }
        );
    }
}
