//! Vendored minimal `rand` stub.
//!
//! The build environment has no crates.io access, so this crate replaces the
//! real `rand` with a small, fully deterministic implementation of the 0.9
//! API subset the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`], [`Rng::random_range`] (integer and float ranges,
//!   half-open and inclusive), [`Rng::random_bool`],
//! * [`seq::SliceRandom::shuffle`],
//! * `rand::prelude::*` re-exporting all of the above.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Determinism is
//! the only contract the workspace needs (same seed ⇒ same stream on every
//! platform and run); the stream does *not* match the real crate's `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::random`].
pub trait Random: Sized {
    /// Draws a uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniformly distributed value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span + 1);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as Random>::random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let unit = <$t as Random>::random(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Random>::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic given the generator state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Convenient glob-import surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=3i32);
            assert!((1..=3).contains(&y));
            let f = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
