//! The crowd phase in isolation: how crowdsourcing finds the retailers
//! worth crawling.
//!
//! ```sh
//! cargo run --release --example crowd_campaign
//! ```
//!
//! Runs the $heriff campaign, shows the cleaning report (including the
//! injected noise the cleaner has to catch), ranks domains by confirmed
//! variation, and demonstrates the paper's funnel: the data-driven
//! target list recovers the discriminating retailers without being told
//! who they are.

use pd_core::{Experiment, ExperimentConfig};

fn main() {
    let mut config = ExperimentConfig::small(1307);
    config.crowd.checks = 400; // a denser crowd for a clearer ranking
    let mut exp = Experiment::new(config);

    println!("== crowd campaign ==");
    let (raw, cleaned, report) = exp.run_crowd_phase();
    println!(
        "checks: {} raw → {} kept ({} customization/highlight drops, {} tax-explained, {} unhealthy)",
        raw.len(),
        cleaned.len(),
        report.dropped_inconsistent,
        report.dropped_tax_explained,
        report.dropped_unhealthy
    );
    println!(
        "cleaner evaluation vs ground truth: dropped-truly-noisy {} / kept-truly-noisy {}\n",
        report.dropped_truly_noisy, report.kept_truly_noisy
    );

    let fx = exp.world().web.fx();
    let frame = pd_analysis::CheckFrame::build(&cleaned, fx);
    let fig1 = pd_analysis::crowd::fig1_ranking(&frame, 15);
    println!("{}", pd_analysis::ascii::render_fig1(&fig1));

    println!("== data-driven crawl-target selection ==");
    let targets = exp.targets_from_crowd(&cleaned, 2);
    let truth: std::collections::HashSet<String> = exp
        .world()
        .web
        .servers()
        .iter()
        .filter(|s| s.spec().is_discriminating())
        .map(|s| s.spec().domain.clone())
        .collect();
    let hits = targets.iter().filter(|t| truth.contains(*t)).count();
    println!(
        "selected {} targets, {} of them truly discriminating (precision {:.0}%)",
        targets.len(),
        hits,
        100.0 * hits as f64 / targets.len().max(1) as f64
    );
    for t in targets.iter().take(10) {
        println!("  {t}");
    }
}
