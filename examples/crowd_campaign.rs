//! The crowd phase in isolation: how crowdsourcing finds the retailers
//! worth crawling.
//!
//! ```sh
//! cargo run --release --example crowd_campaign
//! ```
//!
//! Runs the $heriff campaign through the staged engine — the crawl and
//! analysis stages never execute — shows the cleaning report (including
//! the injected noise the cleaner has to catch), ranks domains by
//! confirmed variation, and demonstrates the paper's funnel: the
//! data-driven target list recovers the discriminating retailers
//! without being told who they are.

use pd_core::{stage, Experiment, ExperimentConfig};

fn main() {
    let mut config = ExperimentConfig::small(1307);
    config.crowd.checks = 400; // a denser crowd for a clearer ranking
    let mut engine = Experiment::builder()
        .config(config)
        .threads(2)
        .build()
        .expect("paper scenario with explicit config");

    println!("== crowd campaign ==");
    // The typed stage artifact: raw store, cleaned store, accounting.
    // It is computed once and cached on the engine.
    let crowd = engine.crowd().clone();
    println!(
        "checks: {} raw → {} kept ({} customization/highlight drops, {} tax-explained, {} unhealthy)",
        crowd.raw.len(),
        crowd.cleaned.len(),
        crowd.cleaning.dropped_inconsistent,
        crowd.cleaning.dropped_tax_explained,
        crowd.cleaning.dropped_unhealthy
    );
    println!(
        "cleaner evaluation vs ground truth: dropped-truly-noisy {} / kept-truly-noisy {}\n",
        crowd.cleaning.dropped_truly_noisy, crowd.cleaning.kept_truly_noisy
    );

    let fx = engine.world().web.fx();
    let frame = pd_analysis::CheckFrame::build(&crowd.cleaned, fx);
    let fig1 = pd_analysis::crowd::fig1_ranking(&frame, 15);
    println!("{}", pd_analysis::ascii::render_fig1(&fig1));

    println!("== data-driven crawl-target selection ==");
    let targets = stage::targets_from_crowd(engine.world(), &crowd.cleaned, 2);
    let truth: std::collections::HashSet<String> = engine
        .world()
        .web
        .servers()
        .iter()
        .filter(|s| s.spec().is_discriminating())
        .map(|s| s.spec().domain.clone())
        .collect();
    let hits = targets.iter().filter(|t| truth.contains(*t)).count();
    println!(
        "selected {} targets, {} of them truly discriminating (precision {:.0}%)",
        targets.len(),
        hits,
        100.0 * hits as f64 / targets.len().max(1) as f64
    );
    for t in targets.iter().take(10) {
        println!("  {t}");
    }
}
