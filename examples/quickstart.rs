//! Quickstart: run the whole study end to end at a small scale.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a simulated e-commerce world (the paper's 30 named retailers
//! plus a long tail), runs the crowdsourced $heriff campaign, cleans the
//! data, crawls the flagged retailers from 14 vantage points, and prints
//! the dataset summary plus the two headline figures.

use pd_core::{Experiment, Profile};

fn main() {
    // Scenario-driven: the `paper` scenario at the `small` profile keeps
    // the quickstart under a second; `Profile::Paper` reproduces the
    // full study. Two worker threads demonstrate the deterministic
    // scheduler — the report is byte-identical at any thread count.
    let mut engine = Experiment::builder()
        .scenario("paper")
        .profile(Profile::Small)
        .seed(1307)
        .threads(2)
        .build()
        .expect("paper is a registered scenario");
    let config = engine.config();
    println!(
        "Running a scaled-down reproduction: {} crowd checks, {} retailers crawled for {} days…\n",
        config.crowd.checks, 21, config.crawl.days
    );

    let report = engine.run();

    println!("{}", report.render_summary());
    println!("{}", report.render_fig1());
    println!("{}", report.render_fig4());
    println!(
        "Login study: variation on {:.0}% of ebooks, correlation with login {}",
        report.fig10.variation_fraction * 100.0,
        report
            .fig10
            .login_correlation
            .map_or("n/a".to_owned(), |c| format!("{c:+.3}"))
    );
    println!(
        "Persona study: {} of {} product pairs differed (paper: none)",
        report.persona.differing_pairs, report.persona.total_pairs
    );
}
