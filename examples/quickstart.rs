//! Quickstart: run the whole study end to end at a small scale.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a simulated e-commerce world (the paper's 30 named retailers
//! plus a long tail), runs the crowdsourced $heriff campaign, cleans the
//! data, crawls the flagged retailers from 14 vantage points, and prints
//! the dataset summary plus the two headline figures.

use pd_core::{Experiment, ExperimentConfig};

fn main() {
    // `ExperimentConfig::paper(1307)` reproduces the full study; `small`
    // keeps the quickstart under a second.
    let config = ExperimentConfig::small(1307);
    println!(
        "Running a scaled-down reproduction: {} crowd checks, {} retailers crawled for {} days…\n",
        config.crowd.checks, 21, config.crawl.days
    );

    let report = Experiment::run(config);

    println!("{}", report.render_summary());
    println!("{}", report.render_fig1());
    println!("{}", report.render_fig4());
    println!(
        "Login study: variation on {:.0}% of ebooks, correlation with login {}",
        report.fig10.variation_fraction * 100.0,
        report
            .fig10
            .login_correlation
            .map_or("n/a".to_owned(), |c| format!("{c:+.3}"))
    );
    println!(
        "Persona study: {} of {} product pairs differed (paper: none)",
        report.persona.differing_pairs, report.persona.total_pairs
    );
}
