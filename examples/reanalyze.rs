//! Measure once, re-analyze forever — the artifact store from the API.
//!
//! Runs the smoke scenario, persists its stage artifacts, then builds a
//! *second* engine that loads the stored measurements (proving, via the
//! observer, that no measurement stage re-ran) and re-analyzes them
//! under a different Fig. 1 ranking depth.
//!
//! ```sh
//! cargo run --release --example reanalyze
//! ```

use pd_core::{Experiment, ExperimentConfig, StageKind, TimingObserver};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("pd-reanalyze-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. Measure: run every stage and persist the artifacts + manifest.
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .build()
        .expect("smoke is registered");
    let analysis = producer.analyze();
    producer.save_artifacts(&dir).expect("artifacts persist");
    producer
        .save_analysis(&dir, &analysis)
        .expect("analysis persists");
    println!(
        "measured: {} crowd checks, {} crawl probes → saved to {}",
        analysis.report.summary.crowd_requests,
        analysis.report.summary.crawled_prices,
        dir.display()
    );

    // 2. Re-analyze: same measurements, different figure parameters.
    //    Only the `analysis` section changes, so every measurement
    //    fingerprint still matches and the stages load from disk.
    let mut config = ExperimentConfig::smoke(7);
    config.analysis.fig1_domains = 10;
    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .config(config)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke is registered");
    let refigured = consumer.run();

    for stage in [StageKind::Crowd, StageKind::Crawl, StageKind::Personas] {
        assert_eq!(observer.starts(stage), 0, "{stage} must come from disk");
        assert_eq!(observer.loads(stage), 1, "{stage} must be loaded");
    }
    assert!(refigured.fig1.len() <= 10);
    println!(
        "re-analyzed without re-measuring: fig1 now ranks {} domains \
         (stages loaded from store: {})",
        refigured.fig1.len(),
        observer
            .loaded()
            .iter()
            .map(|(s, _)| s.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    std::fs::remove_dir_all(&dir).ok();
}
