//! The systematic crawl in isolation: daily synchronized sweeps of a few
//! retailers, and what their prices look like per location.
//!
//! ```sh
//! cargo run --release --example crawl_retailers
//! ```

use pd_core::{Executor, Experiment, ExperimentConfig};
use pd_crawler::{CrawlConfig, Crawler};
use pd_util::Seed;

fn main() {
    let engine = Experiment::builder()
        .config(ExperimentConfig::small(1307))
        .build()
        .expect("paper scenario with explicit config");
    let world = engine.world();

    // Crawl three structurally different retailers: a pure
    // multiplicative one, an additive one, and a per-product mixed one.
    let targets = [
        "www.digitalrev.com".to_owned(),
        "www.energie.it".to_owned(),
        "store.killah.com".to_owned(),
    ];
    let crawler = Crawler::new(
        Seed::new(1307),
        CrawlConfig {
            products_per_retailer: 40,
            days: 5,
            start_day: 45,
            ..CrawlConfig::default()
        },
    );

    println!("== crawling {} retailers ==", targets.len());
    // Per-retailer shards fanned across the deterministic scheduler and
    // merged in target order — identical to a sequential crawl.
    let exec = Executor::new(3);
    let shards = exec.map_indexed(targets.len(), |i| {
        crawler.crawl_one(&world.web, &world.sheriff, &targets[i])
    });
    let mut store = pd_sheriff::MeasurementStore::new();
    let mut stats = Vec::new();
    for (shard, s) in shards {
        store.extend(shard);
        stats.push(s);
    }
    for s in &stats {
        println!(
            "  {:<24} products {:>3}  checks {:>4}  complete {:>4}  retries {}",
            s.domain, s.products, s.checks, s.complete_checks, s.retries
        );
    }
    println!(
        "  total extracted prices: {}\n",
        store.total_extracted_prices()
    );

    let frame = pd_analysis::CheckFrame::build(&store, world.web.fx());
    println!(
        "{}",
        pd_analysis::ascii::render_fig3(&pd_analysis::crawl::fig3_extent(&frame))
    );
    println!(
        "{}",
        pd_analysis::ascii::render_ratio_boxes(
            "Per-domain ratio magnitude (Fig.4 shape)",
            &pd_analysis::crawl::fig4_magnitude(&frame),
        )
    );

    // Where is each retailer expensive? Finland vs the minimum.
    let finland = world
        .vantage_by_label("Finland - Tampere")
        .expect("Finland probe")
        .id;
    println!(
        "{}",
        pd_analysis::ascii::render_fig9(&pd_analysis::location::fig9_finland(&frame, finland))
    );
}
