//! The systematic crawl in isolation: daily synchronized sweeps of a few
//! retailers, and what their prices look like per location.
//!
//! ```sh
//! cargo run --release --example crawl_retailers
//! ```

use pd_core::{Experiment, ExperimentConfig};
use pd_crawler::{CrawlConfig, Crawler};
use pd_util::Seed;

fn main() {
    let exp = Experiment::new(ExperimentConfig::small(1307));
    let world = exp.world();

    // Crawl three structurally different retailers: a pure
    // multiplicative one, an additive one, and a per-product mixed one.
    let targets = vec![
        "www.digitalrev.com".to_owned(),
        "www.energie.it".to_owned(),
        "store.killah.com".to_owned(),
    ];
    let crawler = Crawler::new(
        Seed::new(1307),
        CrawlConfig {
            products_per_retailer: 40,
            days: 5,
            start_day: 45,
            ..CrawlConfig::default()
        },
    );

    println!("== crawling {} retailers ==", targets.len());
    let (store, stats) = crawler.crawl(&world.web, &world.sheriff, &targets);
    for s in &stats {
        println!(
            "  {:<24} products {:>3}  checks {:>4}  complete {:>4}  retries {}",
            s.domain, s.products, s.checks, s.complete_checks, s.retries
        );
    }
    println!(
        "  total extracted prices: {}\n",
        store.total_extracted_prices()
    );

    let frame = pd_analysis::CheckFrame::build(&store, world.web.fx());
    println!(
        "{}",
        pd_analysis::ascii::render_fig3(&pd_analysis::crawl::fig3_extent(&frame))
    );
    println!(
        "{}",
        pd_analysis::ascii::render_ratio_boxes(
            "Per-domain ratio magnitude (Fig.4 shape)",
            &pd_analysis::crawl::fig4_magnitude(&frame),
        )
    );

    // Where is each retailer expensive? Finland vs the minimum.
    let finland = world
        .vantage_by_label("Finland - Tampere")
        .expect("Finland probe")
        .id;
    println!(
        "{}",
        pd_analysis::ascii::render_fig9(&pd_analysis::location::fig9_finland(&frame, finland))
    );
}
