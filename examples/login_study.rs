//! The Sec. 4.4 personal-information experiments (Fig. 10).
//!
//! ```sh
//! cargo run --release --example login_study
//! ```
//!
//! Holds location and time fixed, then measures Kindle-style ebook
//! prices for a logged-out browser and three logged-in accounts, plus
//! the affluent/budget persona pair — all through the engine's persona
//! stage, whose typed artifact carries both experiments. Expected
//! outcome, as in the paper: prices *do* vary across browser
//! identities, the variation is *uncorrelated* with login, and personas
//! change nothing.

use pd_core::{Experiment, Profile};

fn main() {
    let mut engine = Experiment::builder()
        .scenario("paper")
        .profile(Profile::Small)
        .seed(1307)
        .threads(2)
        .build()
        .expect("paper is a registered scenario");

    // Only the persona stage runs: the crowd campaign and the crawl are
    // never executed for this artifact.
    let artifact = engine.personas().clone();

    println!("== login experiment (amazon-like ebooks) ==");
    let fig = pd_analysis::login::fig10(&artifact.login);
    println!("{}", pd_analysis::ascii::render_fig10(&fig));

    println!("== persona experiment (affluent vs budget) ==");
    let summary = pd_analysis::login::persona_summary(&artifact.persona);
    println!(
        "checked {} (retailer, product) pairs across {:?}",
        summary.total_pairs, summary.domains
    );
    println!(
        "pairs with price differences: {} → null result reproduced: {}",
        summary.differing_pairs, summary.null_result
    );
}
