//! The Sec. 4.4 personal-information experiments (Fig. 10).
//!
//! ```sh
//! cargo run --release --example login_study
//! ```
//!
//! Holds location and time fixed, then measures Kindle-style ebook
//! prices for a logged-out browser and three logged-in accounts, plus
//! the affluent/budget persona pair. Expected outcome, as in the paper:
//! prices *do* vary across browser identities, the variation is
//! *uncorrelated* with login, and personas change nothing.

use pd_core::{Experiment, ExperimentConfig};
use pd_net::clock::SimTime;
use pd_net::geo::{Country, Location};
use pd_sheriff::personas::{login_experiment, persona_experiment};
use pd_util::Seed;

fn main() {
    let exp = Experiment::new(ExperimentConfig::small(1307));
    let world = exp.world();
    let boston = Location::new(Country::UnitedStates, "Boston");
    let addr = world.vantage_by_label("USA - Boston").expect("probe").addr;
    let time = SimTime::from_millis(50 * 24 * 3_600_000 + 12 * 3_600_000);

    println!("== login experiment (amazon-like ebooks) ==");
    let login = login_experiment(
        &world.web,
        Seed::new(1307),
        "www.amazon.com",
        &boston,
        addr,
        time,
        25,
    );
    let fig = pd_analysis::login::fig10(&login);
    println!("{}", pd_analysis::ascii::render_fig10(&fig));

    println!("== persona experiment (affluent vs budget) ==");
    let personas = persona_experiment(
        &world.web,
        &["www.amazon.com", "www.hotels.com", "www.digitalrev.com"],
        &boston,
        addr,
        time,
        15,
    );
    let summary = pd_analysis::login::persona_summary(&personas);
    println!(
        "checked {} (retailer, product) pairs across {:?}",
        summary.total_pairs, summary.domains
    );
    println!(
        "pairs with price differences: {} → null result reproduced: {}",
        summary.differing_pairs, summary.null_result
    );
}
