//! Strategy inference validated against ground truth.
//!
//! ```sh
//! cargo run --release --example detect_strategy
//! ```
//!
//! The paper infers pricing structure visually from Fig. 6 ("parallel
//! lines ⇒ multiplicative", "decaying curve ⇒ additive"). This example
//! runs that inference as code — fitting `ratio(p) = f + a/p` per
//! location — across every crawled retailer, then checks the verdicts
//! against the simulator's ground-truth strategy components, something
//! the original study could never do. Per-retailer frames come from
//! `CheckFrame::build_domain`, the per-artifact analysis entry point.

use pd_core::{Experiment, ExperimentConfig};
use pd_crawler::{CrawlConfig, Crawler};
use pd_pricing::StrategyComponent;
use pd_util::Seed;

fn main() {
    let engine = Experiment::builder()
        .config(ExperimentConfig::small(1307))
        .build()
        .expect("paper scenario with explicit config");
    let world = engine.world();
    let targets = world.paper_crawl_targets();
    let crawler = Crawler::new(
        Seed::new(1307),
        CrawlConfig {
            products_per_retailer: 25,
            days: 2,
            start_day: 45,
            ..CrawlConfig::default()
        },
    );
    let (store, _) = crawler.crawl(&world.web, &world.sheriff, &targets);

    // Fit at the three Fig. 6 locations.
    let locs: Vec<_> = ["USA - New York", "UK - London", "Finland - Tampere"]
        .iter()
        .map(|l| {
            let vp = world.vantage_by_label(l).expect("probe exists");
            (vp.id, vp.label())
        })
        .collect();

    println!("retailer                       | location            | fitted f + a/p        | ground truth components");
    println!("{}", "-".repeat(110));
    for domain in &targets {
        // One frame per retailer: the per-artifact analysis path.
        let frame = pd_analysis::CheckFrame::build_domain(&store, world.web.fx(), domain);
        let curves = pd_analysis::strategy::fig6_curves(&frame, domain, &locs);
        let truth = world
            .web
            .server_by_domain(domain)
            .map(|s| describe(s.spec().components.as_slice()))
            .unwrap_or_default();
        for (i, c) in curves.iter().enumerate() {
            let truth_col = if i == 0 { truth.as_str() } else { "" };
            println!(
                "{:<30} | {:<19} | {:.2} + {:>6.2}/p {:<14} | {}",
                if i == 0 { domain.as_str() } else { "" },
                c.label,
                c.mult_factor,
                c.additive_usd,
                format!("({:?})", c.strategy),
                truth_col
            );
        }
    }
}

/// A terse human-readable summary of a strategy pipeline.
fn describe(components: &[StrategyComponent]) -> String {
    components
        .iter()
        .map(|c| match c {
            StrategyComponent::MultiplicativeByLocation { .. } => "mult",
            StrategyComponent::AdditiveByLocation { .. } => "add",
            StrategyComponent::PerProductMixed { .. } => "mixed",
            StrategyComponent::CheapBoost { .. } => "cheap-boost",
            StrategyComponent::SessionJitter { .. } => "jitter",
            StrategyComponent::AbTest { .. } => "ab",
            StrategyComponent::TemporalDrift { .. } => "drift",
            StrategyComponent::ProductGate { .. } => "gate",
        })
        .collect::<Vec<_>>()
        .join("+")
}
