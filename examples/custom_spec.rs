//! Declare a brand-new experiment as data and run it — no trait impl,
//! no registry, no recompile needed for the next variation.
//!
//! ```sh
//! cargo run --release --example custom_spec
//! ```
//!
//! The spec below crosses two sweep axes (2 seeds × 2 failure rates =
//! 4 arms), patches the crawl length, and runs every arm concurrently
//! on the deterministic executor. The same spec serialized to JSON
//! (printed first) can be fed to `pd run --spec FILE.json`.

use pd_core::spec::{FailureRateArm, ScenarioSpec, SweepAxis};
use pd_core::{ConfigPatch, Experiment, Profile};

fn main() {
    let spec = ScenarioSpec {
        name: "resilience-grid".to_owned(),
        describe: "2 seeds × 2 failure rates over a 3-day crawl".to_owned(),
        base: None,
        patch: ConfigPatch {
            crawl_days: Some(3),
            ..ConfigPatch::default()
        },
        sweep: vec![
            SweepAxis::Seeds { count: 2 },
            SweepAxis::FailureRates {
                arms: vec![
                    FailureRateArm {
                        label: "clean".to_owned(),
                        rate: 0.0,
                    },
                    FailureRateArm {
                        label: "flaky-10pct".to_owned(),
                        rate: 0.10,
                    },
                ],
            },
        ],
    };
    println!(
        "spec (feed this to `pd run --spec`):\n{}\n",
        spec.to_json_pretty()
    );

    let mut arms = Experiment::builder()
        .spec(spec)
        .profile(Profile::Smoke)
        .seed(1307)
        .threads(2)
        .run_sweep()
        .expect("valid spec");

    println!(
        "{:<24} {:>8} {:>8} {:>8}",
        "arm", "requests", "kept", "retries"
    );
    for arm in &mut arms {
        let report = &arm.analysis.report;
        // The arm's engine still caches its stage artifacts — reading
        // the crawl stats does not re-crawl.
        let retries: usize = arm.engine.crawl().stats.iter().map(|s| s.retries).sum();
        println!(
            "{:<24} {:>8} {:>8} {:>8}",
            arm.label, report.summary.crowd_requests, report.cleaning.kept, retries
        );
    }
}
